#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "core/fallback_router.hpp"
#include "core/routability.hpp"
#include "core/synthesis_backend.hpp"
#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

using assay::Mo;
using assay::MoList;
using assay::MoType;
using assay::RoutingJob;

/// Droplet pattern of @p area centered at an MO location.
Rect placed_rect(const assay::Loc& loc, int area) {
  const assay::DropletSize size = assay::size_for_area(area);
  return Rect::from_center(loc.x, loc.y, size.w, size.h);
}

/// Translates @p r the minimum amount needed to fit inside @p chip.
Rect clamp_into(Rect r, const Rect& chip) {
  MEDA_REQUIRE(r.width() <= chip.width() && r.height() <= chip.height(),
               "pattern larger than the chip");
  int dx = 0, dy = 0;
  if (r.xa < chip.xa) dx = chip.xa - r.xa;
  if (r.xb > chip.xb) dx = chip.xb - r.xb;
  if (r.ya < chip.ya) dy = chip.ya - r.ya;
  if (r.yb > chip.yb) dy = chip.yb - r.yb;
  return r.shifted(dx, dy);
}

}  // namespace

Rect dispense_entry_rect(const Rect& goal, const Rect& chip) {
  MEDA_REQUIRE(chip.contains(goal), "dispense goal must be on the chip");
  const int west = goal.xa - chip.xa;
  const int east = chip.xb - goal.xb;
  const int south = goal.ya - chip.ya;
  const int north = chip.yb - goal.yb;
  const int best = std::min({west, east, south, north});
  if (best == west) return goal.shifted(-west, 0);
  if (best == east) return goal.shifted(east, 0);
  if (best == south) return goal.shifted(0, -south);
  return goal.shifted(0, north);
}

std::pair<Rect, Rect> split_rects(const Rect& droplet, int area0, int area1,
                                  const Rect& chip) {
  MEDA_REQUIRE(droplet.valid(), "split of an invalid droplet");
  const assay::DropletSize s0 = assay::size_for_area(area0);
  const assay::DropletSize s1 = assay::size_for_area(area1);
  const double cx = droplet.center_x();
  const double cy = droplet.center_y();
  Rect part0, part1;
  if (droplet.width() >= droplet.height()) {
    // Split along x: part0 west, part1 east, one free column between them.
    const int total_w = s0.w + 1 + s1.w;
    const int x0 = static_cast<int>(std::lround(cx - total_w / 2.0));
    part0 = Rect::from_size(
        x0, static_cast<int>(std::lround(cy - (s0.h - 1) / 2.0)), s0.w, s0.h);
    part1 = Rect::from_size(
        x0 + s0.w + 1, static_cast<int>(std::lround(cy - (s1.h - 1) / 2.0)),
        s1.w, s1.h);
    const Rect box{part0.xa, std::min(part0.ya, part1.ya), part1.xb,
                   std::max(part0.yb, part1.yb)};
    const Rect clamped = clamp_into(box, chip);
    part0 = part0.shifted(clamped.xa - box.xa, clamped.ya - box.ya);
    part1 = part1.shifted(clamped.xa - box.xa, clamped.ya - box.ya);
  } else {
    // Split along y: part0 south, part1 north.
    const int total_h = s0.h + 1 + s1.h;
    const int y0 = static_cast<int>(std::lround(cy - total_h / 2.0));
    part0 = Rect::from_size(
        static_cast<int>(std::lround(cx - (s0.w - 1) / 2.0)), y0, s0.w, s0.h);
    part1 = Rect::from_size(
        static_cast<int>(std::lround(cx - (s1.w - 1) / 2.0)), y0 + s0.h + 1,
        s1.w, s1.h);
    const Rect box{std::min(part0.xa, part1.xa), part0.ya,
                   std::max(part0.xb, part1.xb), part1.yb};
    const Rect clamped = clamp_into(box, chip);
    part0 = part0.shifted(clamped.xa - box.xa, clamped.ya - box.ya);
    part1 = part1.shifted(clamped.xa - box.xa, clamped.ya - box.ya);
  }
  MEDA_ASSERT(chip.contains(part0) && chip.contains(part1),
              "split parts do not fit on the chip");
  MEDA_ASSERT(part0.manhattan_gap(part1) >= 1, "split parts touch");
  return {part0, part1};
}

namespace {

/// One in-flight single-droplet route (a routing job being executed).
struct RouteTask {
  RoutingJob rj;
  DropletId droplet = -1;
  DropletId partner = -1;  ///< merge partner; arrival = contact with it
  Strategy strategy;
  std::uint64_t digest = 0;
  bool has_strategy = false;
  // Asynchronous (latency-modeled) synthesis in flight.
  bool pending = false;
  int pending_countdown = 0;
  Strategy pending_strategy;
  std::uint64_t pending_digest = 0;
  // Reactive-recovery bookkeeping: consecutive commanded cycles without
  // progress.
  Rect last_pos = Rect::none();
  int stuck_cycles = 0;
  // Recovery-ladder bookkeeping.
  int retries = 0;            ///< failed synthesis attempts (current episode)
  int backoff_remaining = 0;  ///< cycles left in the current backoff wait
  int watchdog_count = 0;     ///< watchdog firings since the last escalation
  Rect watch_pos = Rect::none();
  int no_progress = 0;        ///< commanded cycles without movement
  // Stall-classifier bookkeeping: a contention-classified stall requests
  // one droplet-avoiding re-synthesis instead of a quarantine.
  bool avoid_droplets_once = false;
  int contention_detours = 0;  ///< detours since the droplet last moved
  // Progress-rate watchdog bookkeeping (recovery.progress_watchdog): EWMA
  // of Manhattan progress toward the goal frontier per commanded cycle.
  double progress_rate = 1.0;
  int last_goal_gap = -1;  ///< gap at the previous commanded cycle; -1 = none
  // Deadline-fallback bookkeeping: a deadline-expired synthesis installs a
  // fallback route and backs off full re-synthesis exponentially.
  bool fallback_active = false;
  int deadline_strikes = 0;             ///< consecutive deadline expiries
  std::uint64_t fallback_retry_at = 0;  ///< chip cycle to retry full synthesis
  // Model-vs-reality bookkeeping.
  std::uint64_t created_cycle = 0;
  double first_expected_cycles = -1.0;
  bool recorded = false;
  // Observability: nonzero while an async "job" span is open for this task.
  std::uint64_t job_span_id = 0;
  // Incremental re-synthesis: the solver state retained across this task's
  // health-delta re-syntheses (primed by the first cold synthesis of the
  // lineage, reused warm while the topology holds).
  ResynthesisContext resynth;
  // N-modular redundancy: >= 0 marks this task as replica #replica of its
  // MO, synthesized against a corridor-masked health view (sibling bands
  // clamped dead outside the shared funnels — see replica_masked_health).
  int replica = -1;
  Rect band = Rect::none();          ///< corridor band this replica owns
  std::vector<Rect> masked_bands;    ///< sibling bands to clamp dead
  Rect start_funnel = Rect::none();  ///< shared slabs exempt from masking
  Rect goal_funnel = Rect::none();
  bool mask_best_effort = false;  ///< corridor plan was not truly disjoint
  bool mask_degraded = false;     ///< mask dropped after infeasible synthesis
  bool abandoned = false;         ///< failed over; no longer commanded
  bool replica_recorded = false;  ///< ReplicaRouteRecord already sealed
  std::vector<Rect> trail;        ///< per-cycle positions (opt-in)
};

/// A losing replica being retired to waste after the vote: routed to the
/// nearest chip edge by the cheap fallback router, then discarded. Kept
/// outside MoRun — the MO completes (and its run tears down) while its
/// losers are still draining off the chip.
struct RetireTask {
  DropletId droplet = -1;
  int mo = -1;
  Strategy strategy;
  bool has_strategy = false;
  Rect goal = Rect::none();
  std::uint64_t created_cycle = 0;
  Rect last_pos = Rect::none();
  int stuck = 0;    ///< consecutive cycles without movement
  int replans = 0;  ///< fallback re-routes consumed
};

/// What a watchdog-confirmed stall is blocked by (satellite classifier).
enum class StallKind : unsigned char {
  kContention,  ///< another live droplet sits on / next to the target cells
  kDeadCells,   ///< the target cells read dead in the controller's view
  kUnknown,     ///< cells read healthy and no droplet nearby (lying cells)
};

const char* stall_name(StallKind kind) {
  switch (kind) {
    case StallKind::kContention: return "blocked-by-droplet";
    case StallKind::kDeadCells: return "blocked-by-dead-cells";
    case StallKind::kUnknown: return "blocked-unknown";
  }
  return "blocked-unknown";
}

/// Runtime state of one MO.
struct MoRun {
  const Mo* mo = nullptr;
  enum class State { kWaiting, kActive, kDone, kAborted } state =
      State::kWaiting;
  int phase = 0;
  int hold_remaining = 0;
  std::vector<RouteTask> routes;
  std::vector<DropletId> in;
  std::vector<DropletId> out;
  std::vector<DropletId> live;  ///< droplets this MO currently owns on chip
  DropletId merged = -1;                          // mix/dlt intermediate
  std::pair<DropletId, DropletId> parts{-1, -1};  // spt/dlt parts
  // Replicated-dispense bookkeeping (kDispense with effective N > 1).
  int replicas_planned = 1;
  int launched = 0;            ///< replicas dispensed so far
  int abandoned_replicas = 0;  ///< replicas lost to failover
  ReplicaCorridorPlan corridors;
  /// Shared synthesis budget of this MO's replicas: one Deadline token per
  /// chip cycle, drawn from by every replica's solve (never N× the budget).
  std::uint64_t replica_deadline_cycle = ~std::uint64_t{0};
  util::Deadline replica_deadline;
};

/// Per-execution driver implementing Algorithm 3 plus the recovery ladder.
class Runner {
 public:
  Runner(const SchedulerConfig& config, StrategyLibrary& library,
         BiochipIo& chip, const MoList& assay_list)
      : config_(config),
        library_(library),
        chip_(chip),
        assay_(assay_list),
        chip_bounds_(chip.bounds()),
        synthesizer_(chip.bounds(), config.synthesis),
        outputs_(assay::compute_outputs(assay_list)),
        filter_(config.filter),
        quarantined_(chip.bounds().width(), chip.bounds().height(), 0) {
    runs_.resize(assay_.ops.size());
    for (std::size_t i = 0; i < assay_.ops.size(); ++i)
      runs_[i].mo = &assay_.ops[i];
    // Criticality floor: a dispense feeding a mix/dilute carries a critical
    // reagent, so SchedulerConfig::replicate_critical_dispenses raises its
    // redundancy degree (per-MO Mo::replicas annotations above the floor
    // are honored either way).
    feeds_mix_.assign(assay_.ops.size(), 0);
    for (const Mo& mo : assay_.ops)
      if (mo.type == MoType::kMix || mo.type == MoType::kDilute)
        for (const assay::PreRef& ref : mo.pre)
          if (assay_.ops[static_cast<std::size_t>(ref.mo)].type ==
              MoType::kDispense)
            feeds_mix_[static_cast<std::size_t>(ref.mo)] = 1;
    senses_health_ = config_.adaptive ||
                     config_.reactive_recovery_stuck_cycles > 0 ||
                     config_.recovery.enabled || config_.filter.enabled;
  }

  ExecutionStats execute() {
    MEDA_OBS_SPAN(run_span, "sched", "execute");
    const std::uint64_t start_cycle = chip_.cycle();
    start_cycle_ = start_cycle;
    stats_.mo_timings.resize(runs_.size());
    for (std::size_t i = 0; i < runs_.size(); ++i)
      stats_.mo_timings[i].mo = static_cast<int>(i);
    while (!failed_ && !all_settled()) {
      if (chip_.cycle() - start_cycle >= config_.max_cycles) {
        fail("cycle limit exceeded");
        break;
      }
      {
        MEDA_OBS_SPAN(cycle_span, "sched", "cycle");
        refresh_health(/*forced=*/false);
        std::vector<Command> commands;
        for (MoRun& run : runs_) {
          if (failed_) break;
          if (run.state == MoRun::State::kWaiting) try_activate(run);
          if (run.state == MoRun::State::kActive) process(run, commands);
        }
        if (failed_) break;
        advance_retirements(commands);
        finalize_aborts(commands);
        chip_.step(commands);
      }
      sample_cycle_counters();
    }
    for (MoRun& run : runs_)  // cycle-limit / hard-fail leftovers
      for (RouteTask& task : run.routes) {
        record_replica_route(task, /*winner=*/false);
        close_job_span(task, "unfinished");
      }
    // Replicas still draining to waste at teardown: charge their traffic.
    for (const RetireTask& retiree : retiring_)
      stats_.replica.droplet_cycles += chip_.cycle() - retiree.created_cycle;
    stats_.cycles = chip_.cycle() - start_cycle;
    for (const MoRun& run : runs_)
      if (run.state == MoRun::State::kDone) ++stats_.completed_mos;
    stats_.aborted_mos = stats_.recovery.aborted_jobs;
    stats_.success = !failed_ && all_done();
    if (failed_) {
      stats_.failure_reason = failure_reason_;
    } else if (!stats_.success && !abort_reasons_.empty()) {
      std::string reason = std::to_string(abort_reasons_.size()) +
                           " job(s) aborted — first: " + abort_reasons_.front();
      stats_.failure_reason = std::move(reason);
    }
    record_run_metrics(run_span);
    return stats_;
  }

  /// End-of-run roll-up into the metrics registry plus execute-span args.
  template <typename Span>
  void record_run_metrics(Span& span) {
    if (!MEDA_OBS_ACTIVE()) return;
    span.arg("cycles", static_cast<std::int64_t>(stats_.cycles));
    span.arg("success", static_cast<std::int64_t>(stats_.success ? 1 : 0));
    span.arg("synthesis_calls",
             static_cast<std::int64_t>(stats_.synthesis_calls));
    span.arg("resyntheses", static_cast<std::int64_t>(stats_.resyntheses));
    span.arg("resyntheses_warm",
             static_cast<std::int64_t>(stats_.resyntheses_warm));
    MEDA_OBS_COUNT("sched.runs", 1);
    if (stats_.success) MEDA_OBS_COUNT("sched.successes", 1);
    MEDA_OBS_COUNT("sched.cycles", stats_.cycles);
    MEDA_OBS_COUNT("sched.synthesis_calls",
                   static_cast<std::uint64_t>(stats_.synthesis_calls));
    MEDA_OBS_COUNT("sched.library_hits",
                   static_cast<std::uint64_t>(stats_.library_hits));
    MEDA_OBS_COUNT("sched.resyntheses",
                   static_cast<std::uint64_t>(stats_.resyntheses));
    MEDA_OBS_COUNT("sched.resyntheses_warm",
                   static_cast<std::uint64_t>(stats_.resyntheses_warm));
    MEDA_OBS_COUNT("sched.completed_mos",
                   static_cast<std::uint64_t>(stats_.completed_mos));
    MEDA_OBS_COUNT("sched.aborted_mos",
                   static_cast<std::uint64_t>(stats_.aborted_mos));
    MEDA_OBS_OBSERVE("sched.run_cycles", static_cast<double>(stats_.cycles),
                     obs::kPow2Buckets);
    const RecoveryCounters& rec = stats_.recovery;
    MEDA_OBS_COUNT("recovery.watchdog_fires",
                   static_cast<std::uint64_t>(rec.watchdog_fires));
    MEDA_OBS_COUNT("recovery.forced_resenses",
                   static_cast<std::uint64_t>(rec.forced_resenses));
    MEDA_OBS_COUNT("recovery.synthesis_retries",
                   static_cast<std::uint64_t>(rec.synthesis_retries));
    MEDA_OBS_COUNT("recovery.backoff_cycles", rec.backoff_cycles);
    MEDA_OBS_COUNT("recovery.quarantined_cells",
                   static_cast<std::uint64_t>(rec.quarantined_cells));
    MEDA_OBS_COUNT("recovery.contention_detours",
                   static_cast<std::uint64_t>(rec.contention_detours));
    MEDA_OBS_COUNT("recovery.aborted_jobs",
                   static_cast<std::uint64_t>(rec.aborted_jobs));
    MEDA_OBS_COUNT("recovery.synthesis_deadlines",
                   static_cast<std::uint64_t>(rec.synthesis_deadlines));
    MEDA_OBS_COUNT("recovery.fallback_routes",
                   static_cast<std::uint64_t>(rec.fallback_routes));
    MEDA_OBS_COUNT("recovery.paroled_cells",
                   static_cast<std::uint64_t>(rec.paroled_cells));
    const ReplicaCounters& rep = stats_.replica;
    MEDA_OBS_COUNT("replica.launched",
                   static_cast<std::uint64_t>(rep.launched));
    MEDA_OBS_COUNT("replica.failovers",
                   static_cast<std::uint64_t>(rep.failovers));
    MEDA_OBS_COUNT("replica.merges", static_cast<std::uint64_t>(rep.merges));
    MEDA_OBS_COUNT("replica.retired", static_cast<std::uint64_t>(rep.retired));
    MEDA_OBS_COUNT("replica.best_effort_masks",
                   static_cast<std::uint64_t>(rep.best_effort_masks));
    MEDA_OBS_COUNT("replica.droplet_cycles", rep.droplet_cycles);
  }

  /// Samples the cycle-domain counter tracks (droplets on chip, in-flight
  /// syntheses) once per operational cycle while tracing is enabled.
  void sample_cycle_counters() {
    if (!MEDA_OBS_ACTIVE()) return;
    obs::Tracer& tracer = obs::ctx().tracer();
    if (!tracer.enabled()) return;
    const std::uint64_t cycle = chip_.cycle() - start_cycle_;
    std::int64_t droplets = 0;
    std::int64_t pending = 0;
    for (const MoRun& run : runs_) {
      droplets += static_cast<std::int64_t>(run.live.size());
      for (const RouteTask& task : run.routes)
        if (task.pending) ++pending;
    }
    droplets += static_cast<std::int64_t>(retiring_.size());
    tracer.cycle_counter("droplets_on_chip", droplets, cycle);
    tracer.cycle_counter("pending_syntheses", pending, cycle);
    tracer.cycle_counter("health_changes", health_changes_total_, cycle);
    tracer.cycle_counter("retiring_droplets",
                         static_cast<std::int64_t>(retiring_.size()), cycle);
  }

 private:
  bool all_done() const {
    return std::all_of(runs_.begin(), runs_.end(), [](const MoRun& r) {
      return r.state == MoRun::State::kDone;
    });
  }

  /// True when every MO has finished or gracefully aborted.
  bool all_settled() const {
    return std::all_of(runs_.begin(), runs_.end(), [](const MoRun& r) {
      return r.state == MoRun::State::kDone ||
             r.state == MoRun::State::kAborted;
    });
  }

  void fail(std::string reason) {
    failed_ = true;
    failure_reason_ = std::move(reason);
  }

  /// Appends one entry to the unified structured event log (and mirrors it
  /// to the wall-clock trace as an instant marker when tracing is on).
  void obs_event(std::string category, std::string name, int mo,
                 std::string detail) {
    MEDA_OBS_INSTANT("event", name, detail);
    stats_.events.push_back(obs::Event{chip_.cycle() - start_cycle_,
                                       std::move(category), std::move(name),
                                       mo, std::move(detail)});
  }

  /// Recovery-ladder firing: one emit fills the unified event log plus the
  /// legacy typed RecoveryEvent view (kept for existing consumers).
  void event(RecoveryAction action, int mo, std::string detail) {
    const std::uint64_t cycle = chip_.cycle() - start_cycle_;
    obs_event("recovery", std::string(to_string(action)), mo, detail);
    stats_.recovery_events.push_back(
        RecoveryEvent{action, cycle, mo, std::move(detail)});
  }

  /// Senses the chip and rebuilds the controller's health view: raw scan or
  /// filtered estimate, with quarantined cells clamped dead. @p forced marks
  /// a ladder-driven re-sense (the filter re-seeds from the next frame).
  void refresh_health(bool forced) {
    if (!senses_health_) return;
    IntMatrix scan = chip_.sense_health();
    if (config_.filter.enabled) {
      if (forced) filter_.force_resense();
      filter_.observe(scan);
      health_ = filter_.estimate();
    } else {
      health_ = std::move(scan);
    }
    if (forced) {
      ++stats_.recovery.forced_resenses;
      // The fresh (pre-clamp) estimate is the parole evidence: a cell the
      // re-sense reads alive may leave the quarantine set under budget
      // pressure before the clamp below re-kills the remaining inmates.
      parole_quarantined();
    }
    apply_quarantine();
    note_health_change();
  }

  /// Ceiling on the quarantine set (cells), shared by the suspect budget
  /// and the parole trigger.
  int quarantine_budget() const {
    return static_cast<int>(
        config_.recovery.max_quarantine_fraction *
        static_cast<double>(quarantined_.width() * quarantined_.height()));
  }

  /// Budget-pressure parole: once the quarantine budget is exhausted, a
  /// forced re-sense releases the *oldest* quarantined cells whose fresh
  /// estimate reads alive, until the set is back at 3/4 of the budget.
  /// Without this, early (possibly sensing-noise-driven) quarantines stay
  /// blacklisted forever while genuinely dead cells compete for the budget.
  void parole_quarantined() {
    if (!config_.recovery.enabled || quarantine_count_ == 0 ||
        health_.empty())
      return;
    const int budget = quarantine_budget();
    if (quarantine_count_ < budget) return;
    const int target = (budget * 3) / 4;
    int released = 0;
    auto it = quarantine_order_.begin();
    while (it != quarantine_order_.end() && quarantine_count_ > target) {
      const int x = it->x;
      const int y = it->y;
      if (quarantined_(x, y) == 0) {
        it = quarantine_order_.erase(it);  // stale entry (already released)
      } else if (health_(x, y) > 1) {
        // Parole demands more than the weakest alive reading: under heavy
        // sensing noise a dead cell's level-0 word often corrupts into
        // level 1, and releasing on that would churn the same cells through
        // quarantine → parole → re-quarantine.
        quarantined_(x, y) = 0;
        --quarantine_count_;
        ++released;
        it = quarantine_order_.erase(it);
      } else {
        ++it;  // still reads dead: stays quarantined
      }
    }
    if (released == 0) return;
    stats_.recovery.paroled_cells += released;
    event(RecoveryAction::kQuarantineParole, -1,
          std::to_string(released) + " cell(s) re-sensed alive; released");
    if (quarantine_count_ < budget) quarantine_budget_hit_ = false;
  }

  /// Tracks changes of the controller's whole health view (metrics counter +
  /// cycle-domain instant) so the trace shows when the world shifted.
  void note_health_change() {
    if (!MEDA_OBS_ACTIVE() || health_.empty()) return;
    const std::uint64_t digest = health_digest(health_, chip_bounds_);
    if (has_health_digest_ && digest != last_health_digest_) {
      ++health_changes_total_;
      MEDA_OBS_COUNT("sched.health_changes", 1);
      MEDA_OBS_CYCLE_INSTANT("health-change", chip_.cycle() - start_cycle_);
    }
    last_health_digest_ = digest;
    has_health_digest_ = true;
  }

  /// Folds filter-suspect cells into the quarantine set and clamps every
  /// quarantined cell to health 0 in the current view.
  void apply_quarantine() {
    if (!config_.recovery.enabled) return;
    if (config_.recovery.quarantine_suspects && config_.filter.enabled &&
        filter_.suspect_count() > quarantined_suspects_seen_) {
      // Budgeted: a suspect *flood* means the sensing channel is failing,
      // not the substrate — quarantining it all would blind the router to a
      // still-routable chip. Past the budget, trust the filtered estimate.
      const int budget = quarantine_budget();
      const BoolMatrix& suspect = filter_.suspect();
      int added = 0;
      for (int y = 0; y < quarantined_.height(); ++y)
        for (int x = 0; x < quarantined_.width(); ++x) {
          if (quarantine_count_ + added >= budget) break;
          if (suspect(x, y) != 0 && quarantined_(x, y) == 0) {
            quarantined_(x, y) = 1;
            quarantine_order_.push_back({x, y});
            ++added;
          }
        }
      quarantined_suspects_seen_ = filter_.suspect_count();
      if (added > 0) {
        quarantine_count_ += added;
        stats_.recovery.quarantined_cells += added;
        event(RecoveryAction::kQuarantine, -1,
              std::to_string(added) + " suspect cell(s)");
      }
      if (quarantine_count_ >= budget && !quarantine_budget_hit_) {
        quarantine_budget_hit_ = true;
        obs_event("recovery", "quarantine-budget", -1,
                  "suspect flood: budget of " + std::to_string(budget) +
                      " cell(s) exhausted; trusting the filter estimate");
      }
    }
    clamp_quarantined();
  }

  void clamp_quarantined() {
    if (quarantine_count_ == 0 || health_.empty()) return;
    for (int y = 0; y < health_.height(); ++y)
      for (int x = 0; x < health_.width(); ++x)
        if (quarantined_(x, y) != 0) health_(x, y) = 0;
  }

  /// Quarantines the cells a stuck droplet keeps failing to enter: the
  /// commanded action's target pattern minus the current position (fallback:
  /// the one-cell ring around the droplet). The router must then plan around
  /// them even though they may still *read* healthy.
  void quarantine_attempt_frontier(MoRun& run, RouteTask& task,
                                   const Rect& pos) {
    const Rect area = attempt_frontier(task, pos);
    int added = 0;
    for (int y = area.ya; y <= area.yb; ++y)
      for (int x = area.xa; x <= area.xb; ++x)
        if (!pos.contains(x, y) && quarantined_(x, y) == 0) {
          quarantined_(x, y) = 1;
          quarantine_order_.push_back({x, y});
          ++added;
        }
    if (added == 0) return;
    quarantine_count_ += added;
    stats_.recovery.quarantined_cells += added;
    event(RecoveryAction::kQuarantine, run.mo->id,
          std::to_string(added) + " cell(s) blocking " + pos.to_string());
    clamp_quarantined();
    routability_gate(run);
  }

  /// The cells a stuck task is trying (and failing) to enter: the commanded
  /// action's target pattern (fallback: the one-cell ring around the
  /// droplet), clamped to the chip. Shared by the quarantine escalation and
  /// the stall classifier so both reason about the same frontier.
  Rect attempt_frontier(const RouteTask& task, const Rect& pos) const {
    Rect area = pos.inflated(1);
    if (task.has_strategy) {
      if (const std::optional<Action> a = task.strategy.action(pos))
        area = apply(*a, pos);
    }
    return area.intersection_with(chip_bounds_);
  }

  /// Droplet-aware stall classification (on watchdog escalation): is the
  /// droplet blocked by another live droplet parked on / next to its target
  /// cells, by cells the controller's view already reads dead, or by cells
  /// that read healthy but do not respond (lying cells)?
  StallKind classify_stall(const RouteTask& task, const Rect& pos) const {
    const Rect target = attempt_frontier(task, pos);
    for (const MoRun& run : runs_) {
      for (const DropletId other : run.live) {
        if (other == task.droplet || other == task.partner) continue;
        // The separation rule blocks entry when the other droplet is on the
        // target cells or directly adjacent to them.
        if (chip_.droplet_position(other).manhattan_gap(target) <= 1)
          return StallKind::kContention;
      }
    }
    // Retiring replicas are still physical droplets on the chip.
    for (const RetireTask& retiree : retiring_) {
      if (retiree.droplet == task.droplet || retiree.droplet == task.partner)
        continue;
      if (chip_.droplet_position(retiree.droplet).manhattan_gap(target) <= 1)
        return StallKind::kContention;
    }
    if (!health_.empty()) {
      for (int y = target.ya; y <= target.yb; ++y)
        for (int x = target.xa; x <= target.xb; ++x)
          if (!pos.contains(x, y) && health_(x, y) == 0)
            return StallKind::kDeadCells;
    }
    return StallKind::kUnknown;
  }

  void record_stall_metric(StallKind kind) {
    switch (kind) {
      case StallKind::kContention:
        MEDA_OBS_COUNT("sched.stalls_contention", 1);
        break;
      case StallKind::kDeadCells:
        MEDA_OBS_COUNT("sched.stalls_dead_cells", 1);
        break;
      case StallKind::kUnknown:
        MEDA_OBS_COUNT("sched.stalls_unknown", 1);
        break;
    }
  }

  /// The given health view with every *other* live droplet's footprint
  /// (inflated by the separation margin) masked dead: a virtual obstacle
  /// map for contention detours. The stuck droplet's own cells are never
  /// masked. Retiring replicas count — they are still on the chip.
  IntMatrix droplet_masked_health(const RouteTask& task, const Rect& pos,
                                  const IntMatrix& base) const {
    IntMatrix masked = base;
    const auto mask_other = [&](DropletId other) {
      if (other == task.droplet || other == task.partner) return;
      const Rect area = chip_.droplet_position(other)
                            .inflated(1)
                            .intersection_with(chip_bounds_);
      for (int y = area.ya; y <= area.yb; ++y)
        for (int x = area.xa; x <= area.xb; ++x)
          if (!pos.contains(x, y)) masked(x, y) = 0;
    };
    for (const MoRun& run : runs_)
      for (const DropletId other : run.live) mask_other(other);
    for (const RetireTask& retiree : retiring_) mask_other(retiree.droplet);
    return masked;
  }

  /// After a quarantine, optionally probes chip-wide routability; a chip
  /// that can no longer route most jobs is not worth burning cycles on.
  void routability_gate(MoRun& run) {
    if (config_.recovery.routability_probe_jobs <= 0) return;
    RoutabilityConfig probe;
    probe.jobs = config_.recovery.routability_probe_jobs;
    probe.synthesis = config_.synthesis;
    // Deterministic probe seed tied to the execution point.
    Rng rng(0x90BAB17Eull ^ (chip_.cycle() * 0x9E3779B97F4A7C15ull));
    const RoutabilityReport report =
        assess_routability(health_, chip_.health_bits(), probe, rng);
    if (report.feasible_fraction < config_.recovery.min_routable_fraction) {
      abort_job(run, "chip unroutable after quarantine (feasible fraction " +
                         std::to_string(report.feasible_fraction) + ")");
    }
  }

  /// Gracefully aborts one MO: its droplets are scheduled for discard at the
  /// end of the cycle and its dependents cascade-abort on activation.
  void abort_job(MoRun& run, const std::string& reason) {
    if (run.state == MoRun::State::kAborted) return;
    run.state = MoRun::State::kAborted;
    ++stats_.recovery.aborted_jobs;
    abort_reasons_.push_back("MO " + std::to_string(run.mo->id) + ": " +
                             reason);
    event(RecoveryAction::kJobAbort, run.mo->id, reason);
    doomed_.insert(doomed_.end(), run.live.begin(), run.live.end());
    run.live.clear();
  }

  /// Executes deferred aborts: strips commands addressed to doomed droplets,
  /// removes the droplets from the chip, and releases aborted runs' routes.
  void finalize_aborts(std::vector<Command>& commands) {
    if (doomed_.empty()) return;
    std::erase_if(commands, [this](const Command& c) {
      return std::find(doomed_.begin(), doomed_.end(), c.droplet) !=
             doomed_.end();
    });
    for (const DropletId id : doomed_) chip_.discard(id);
    doomed_.clear();
    for (MoRun& run : runs_)
      if (run.state == MoRun::State::kAborted) {
        for (RouteTask& task : run.routes) {
          record_replica_route(task, /*winner=*/false);
          close_job_span(task, "aborted");
        }
        run.routes.clear();
      }
  }

  /// Ladder stage: a deadline-expired synthesis. Instead of burning the
  /// retry budget on a solve that just proved too expensive, degrade to the
  /// bounded fallback router and back off full re-synthesis exponentially:
  /// strike i waits fallback_backoff_base_cycles << (i-1) cycles (capped)
  /// before the next health change may retry the real thing.
  void on_synthesis_deadline(MoRun& run, RouteTask& task, const RoutingJob& rj,
                             std::uint64_t digest, const IntMatrix* masked) {
    ++stats_.recovery.synthesis_deadlines;
    ++task.deadline_strikes;
    event(RecoveryAction::kSynthesisDeadline, task.rj.mo,
          "synthesis deadline expired (strike " +
              std::to_string(task.deadline_strikes) + ")");
    if (!config_.recovery.enabled) {
      fail("synthesis deadline expired for MO " + std::to_string(task.rj.mo));
      return;
    }
    if (!config_.recovery.fallback_on_deadline) {
      on_synthesis_failure(run, task);  // plain infeasible-synthesis ladder
      return;
    }
    const int base = std::max(1, config_.recovery.fallback_backoff_base_cycles);
    const int cap = std::max(base, config_.recovery.fallback_backoff_max_cycles);
    const int shift = std::min(task.deadline_strikes - 1, 16);
    const int wait = std::min(base << shift, cap);
    task.fallback_retry_at = chip_.cycle() + static_cast<std::uint64_t>(wait);
    install_fallback(run, task, rj, digest, masked);
  }

  /// Ladder stage: the external synthesis backend refused the solve (shed
  /// under admission control or a spent tenant budget). Same degradation as
  /// a deadline-expired local synthesis — bounded fallback route now, full
  /// synthesis retried after exponential backoff — but counted separately:
  /// a shed says the *service* was saturated, not that this solve was
  /// expensive.
  void on_synthesis_shed(MoRun& run, RouteTask& task, const RoutingJob& rj,
                         std::uint64_t digest, const IntMatrix* masked,
                         const char* reason) {
    ++stats_.service_sheds;
    ++task.deadline_strikes;
    MEDA_OBS_COUNT("sched.service_shed", 1);
    obs_event("recovery", "service-shed", task.rj.mo,
              std::string("synthesis service shed this solve (") + reason +
                  "), degrading to fallback");
    if (!config_.recovery.enabled) {
      fail("synthesis service shed MO " + std::to_string(task.rj.mo) + " (" +
           std::string(reason) + ") with recovery disabled");
      return;
    }
    if (!config_.recovery.fallback_on_deadline) {
      on_synthesis_failure(run, task);
      return;
    }
    const int base = std::max(1, config_.recovery.fallback_backoff_base_cycles);
    const int cap = std::max(base, config_.recovery.fallback_backoff_max_cycles);
    const int shift = std::min(task.deadline_strikes - 1, 16);
    const int wait = std::min(base << shift, cap);
    task.fallback_retry_at = chip_.cycle() + static_cast<std::uint64_t>(wait);
    install_fallback(run, task, rj, digest, masked);
  }

  /// Computes and installs a bounded fallback route over the current health
  /// view (droplet-masked when a contention detour requested it). An
  /// infeasible fallback falls through to the retry/abort ladder.
  void install_fallback(MoRun& run, RouteTask& task, const RoutingJob& rj,
                        std::uint64_t digest, const IntMatrix* masked) {
    FallbackConfig fallback_config;
    fallback_config.rules = config_.synthesis.rules;
    fallback_config.max_expansions = config_.recovery.fallback_max_expansions;
    const IntMatrix& view = masked != nullptr ? *masked : health_;
    FallbackResult fallback =
        fallback_route(rj, view, chip_bounds_, fallback_config);
    if (!fallback.feasible) {
      on_synthesis_failure(run, task);
      return;
    }
    ++stats_.recovery.fallback_routes;
    obs_event("recovery", "fallback-route", task.rj.mo,
              "fallback route of " + std::to_string(fallback.path_length) +
                  " action(s) installed");
    task.strategy = std::move(fallback.strategy);
    task.digest = digest;
    task.has_strategy = true;
    task.pending = false;
    task.fallback_active = true;
    task.retries = 0;
    if (task.first_expected_cycles < 0.0)
      task.first_expected_cycles = static_cast<double>(fallback.path_length);
  }

  /// Ladder stage: an infeasible synthesis. Bounded retries with
  /// exponential backoff and a forced re-sense; then the replica-failover
  /// rung for replicated droplets, graceful job abort otherwise.
  void on_synthesis_failure(MoRun& run, RouteTask& task) {
    ++task.retries;
    ++stats_.recovery.synthesis_retries;
    if (task.retries > config_.recovery.max_retries) {
      if (task.replica >= 0) {
        // Per-replica budget exhausted: abandon this replica and let its
        // siblings race on — only all-replica failure aborts the MO.
        abandon_replica(run, task);
        return;
      }
      abort_job(run, "no feasible strategy after " +
                         std::to_string(task.retries) + " attempts");
      return;
    }
    event(RecoveryAction::kSynthesisRetry, task.rj.mo,
          "attempt " + std::to_string(task.retries) + "/" +
              std::to_string(config_.recovery.max_retries));
    if (config_.recovery.backoff_base_cycles > 0) {
      task.backoff_remaining = config_.recovery.backoff_base_cycles
                               << (task.retries - 1);
      event(RecoveryAction::kBackoff, task.rj.mo,
            std::to_string(task.backoff_remaining) + " cycle(s)");
    }
    // Fresh information for the retry.
    refresh_health(/*forced=*/true);
  }

  void try_activate(MoRun& run) {
    bool aborted_pre = false;
    for (const assay::PreRef& ref : run.mo->pre) {
      const MoRun::State s = runs_[static_cast<std::size_t>(ref.mo)].state;
      if (s == MoRun::State::kWaiting || s == MoRun::State::kActive) return;
      if (s == MoRun::State::kAborted) aborted_pre = true;
    }
    if (aborted_pre) {
      // Cascade: inputs produced by completed predecessors can never be
      // consumed; remove them from the chip with the abort.
      for (const assay::PreRef& ref : run.mo->pre) {
        const MoRun& pre = runs_[static_cast<std::size_t>(ref.mo)];
        if (pre.state == MoRun::State::kDone)
          doomed_.push_back(pre.out[static_cast<std::size_t>(ref.out)]);
      }
      abort_job(run, "predecessor aborted");
      return;
    }
    run.in.clear();
    for (const assay::PreRef& ref : run.mo->pre) {
      const MoRun& pre = runs_[static_cast<std::size_t>(ref.mo)];
      MEDA_ASSERT(ref.out < static_cast<int>(pre.out.size()),
                  "predecessor output missing");
      run.in.push_back(pre.out[static_cast<std::size_t>(ref.out)]);
    }
    run.state = MoRun::State::kActive;
    run.phase = 0;
    run.live = run.in;
    stats_.mo_timings[static_cast<std::size_t>(run.mo->id)].activated =
        chip_.cycle() - start_cycle_;
  }

  void finish(MoRun& run, std::vector<DropletId> out) {
    run.out = std::move(out);
    for (RouteTask& task : run.routes) close_job_span(task, "finished");
    run.routes.clear();
    run.live.clear();
    run.state = MoRun::State::kDone;
    MoTiming& timing = stats_.mo_timings[static_cast<std::size_t>(run.mo->id)];
    timing.completed = chip_.cycle() - start_cycle_;
    timing.done = true;
  }

  int droplet_area(DropletId id) const {
    return chip_.droplet_position(id).area();
  }

  /// Creates a routing job for @p droplet from its current position.
  RouteTask make_route(int mo_id, DropletId droplet, const Rect& goal,
                       DropletId partner = -1) {
    RouteTask task;
    task.rj.start = chip_.droplet_position(droplet);
    task.rj.goal = goal;
    task.rj.hazard =
        assay::zone(task.rj.start, goal, chip_bounds_, config_.zone_margin);
    task.rj.mo = mo_id;
    task.droplet = droplet;
    task.partner = partner;
    task.created_cycle = chip_.cycle();
    if (MEDA_OBS_ACTIVE() && obs::ctx().tracer().enabled()) {
      task.job_span_id = ++job_serial_;
      obs::ctx().tracer().async_begin(
          "job", "MO " + std::to_string(mo_id) + " route", task.job_span_id);
    }
    return task;
  }

  /// Closes the task's async job span (idempotent; no-op when none is open).
  void close_job_span(RouteTask& task, std::string_view outcome) {
    if (task.job_span_id == 0) return;
    obs::ctx().tracer().async_end(
        "job", "MO " + std::to_string(task.rj.mo) + " route",
        task.job_span_id,
        {{"outcome", obs::json_quote(outcome)},
         {"cycles", std::to_string(chip_.cycle() - task.created_cycle)}});
    task.job_span_id = 0;
  }

  /// Manhattan gap from the droplet to its arrival frontier: contact with
  /// the merge partner for partnered routes, the goal rectangle otherwise.
  /// The progress-rate watchdog measures its EWMA over this quantity.
  int goal_gap(const RouteTask& task, const Rect& pos) const {
    if (task.partner >= 0)
      return pos.manhattan_gap(chip_.droplet_position(task.partner));
    return pos.manhattan_gap(task.rj.goal);
  }

  /// True once the task's droplet has arrived: inside the goal, or — for
  /// merge-partnered routes — in contact with the partner.
  bool route_arrived(const RouteTask& task) const {
    const Rect pos = chip_.droplet_position(task.droplet);
    if (task.partner >= 0) {
      return pos.manhattan_gap(chip_.droplet_position(task.partner)) <= 1;
    }
    return task.rj.goal.contains(pos);
  }

  /// Advances one route by one cycle (emits at most one command).
  /// Returns true when the droplet has arrived (no command emitted).
  bool advance_route(MoRun& run, RouteTask& task,
                     std::vector<Command>& commands) {
    if (route_arrived(task)) {
      if (!task.recorded && task.first_expected_cycles >= 0.0) {
        stats_.routes.push_back(
            RouteRecord{task.rj.mo, task.first_expected_cycles,
                        chip_.cycle() - task.created_cycle});
        task.recorded = true;
      }
      close_job_span(task, "arrived");
      return true;
    }
    const Rect pos = chip_.droplet_position(task.droplet);
    if (task.partner >= 0 && task.rj.goal.contains(pos)) {
      // Parked at the mixer waiting for the partner to make contact.
      commands.push_back(Command{task.droplet, std::nullopt, task.partner});
      return false;
    }

    // Ladder backoff: hold in place while waiting out a failed synthesis.
    if (task.backoff_remaining > 0) {
      --task.backoff_remaining;
      ++stats_.recovery.backoff_cycles;
      commands.push_back(Command{task.droplet, std::nullopt, task.partner});
      return false;
    }

    // Ladder watchdog: a commanded droplet that stops making progress
    // triggers a forced re-sense + strategy drop; repeated firings escalate
    // to quarantining the cells it keeps failing to enter. With stall
    // classification enabled, a stall attributable to another live droplet
    // (contention) instead requests a droplet-avoiding re-synthesis —
    // quarantining perfectly healthy cells just because a neighbour parked
    // on them would permanently shrink the routable chip.
    //
    // Two stall detectors share the escalation: the progress-rate watchdog
    // (the default) fires when an EWMA of Manhattan progress toward the
    // goal frontier decays below min_progress_rate — an end-of-life chip
    // where pulls still land every few cycles keeps a healthy rate and is
    // left to crawl, while a true stall decays to zero; the fixed
    // stuck_cycles counter (progress_watchdog = false) fires after exactly
    // stuck_cycles commanded cycles at the same position (the
    // equivalence-test behavior).
    if (config_.recovery.enabled) {
      bool watchdog_fired = false;
      if (config_.recovery.progress_watchdog) {
        if (task.has_strategy) {
          const int gap = goal_gap(task, pos);
          if (task.last_goal_gap >= 0) {
            // Movement that does not approach the goal (a detour leg, a
            // morph) still proves the droplet responds; credit it so only
            // genuine unresponsiveness decays the rate.
            constexpr double kMovementCredit = 0.25;
            double observed =
                std::max(0.0, static_cast<double>(task.last_goal_gap - gap));
            if (pos != task.watch_pos)
              observed = std::max(observed, kMovementCredit);
            const double alpha = config_.recovery.progress_alpha;
            task.progress_rate =
                (1.0 - alpha) * task.progress_rate + alpha * observed;
            if (task.progress_rate < config_.recovery.min_progress_rate) {
              watchdog_fired = true;
              task.progress_rate = 1.0;  // fresh grace period after firing
              task.last_goal_gap = -1;
            } else {
              task.last_goal_gap = gap;
            }
          } else {
            task.last_goal_gap = gap;
            task.progress_rate = 1.0;
          }
          if (pos != task.watch_pos)
            task.contention_detours = 0;  // movement resets the detour budget
          task.watch_pos = pos;
        } else {
          task.last_goal_gap = -1;  // no commanded strategy: not stalling
        }
      } else if (config_.recovery.stuck_cycles > 0) {
        if (task.has_strategy && pos == task.watch_pos) {
          if (++task.no_progress >= config_.recovery.stuck_cycles) {
            task.no_progress = 0;
            watchdog_fired = true;
          }
        } else {
          task.watch_pos = pos;
          task.no_progress = 0;
          task.contention_detours = 0;  // progress resets the detour budget
        }
      }
      if (watchdog_fired) {
        ++task.watchdog_count;
        ++stats_.recovery.watchdog_fires;
        event(RecoveryAction::kWatchdogResense, task.rj.mo,
              "droplet stuck at " + pos.to_string());
        refresh_health(/*forced=*/true);
        const StallKind kind = config_.recovery.classify_stalls
                                   ? classify_stall(task, pos)
                                   : StallKind::kUnknown;
        if (config_.recovery.classify_stalls) {
          obs_event("stall", stall_name(kind), task.rj.mo,
                    "stuck at " + pos.to_string());
          record_stall_metric(kind);
        }
        if (kind == StallKind::kContention &&
            task.contention_detours <
                config_.recovery.max_contention_detours) {
          ++task.contention_detours;
          ++stats_.recovery.contention_detours;
          task.watchdog_count = 0;  // contention must not reach quarantine
          event(RecoveryAction::kContentionDetour, task.rj.mo,
                "re-routing around droplet near " + pos.to_string());
          task.avoid_droplets_once = true;
        } else if (task.watchdog_count >=
                   config_.recovery.quarantine_after_watchdogs) {
          task.watchdog_count = 0;
          quarantine_attempt_frontier(run, task, pos);
          if (run.state != MoRun::State::kActive) return false;
        }
        task.has_strategy = false;
        task.pending = false;
      }
    }

    // Reactive error recovery (retrial-based, Section II-C): once the
    // droplet has been stuck long enough, re-route using the sensed health.
    if (config_.reactive_recovery_stuck_cycles > 0 && !config_.adaptive) {
      if (pos == task.last_pos) {
        if (++task.stuck_cycles >= config_.reactive_recovery_stuck_cycles) {
          task.stuck_cycles = 0;
          task.has_strategy = false;
          task.pending = false;
          recover_strategy(run, task, pos);
          if (failed_ || run.state != MoRun::State::kActive) return false;
        }
      } else {
        task.last_pos = pos;
        task.stuck_cycles = 0;
      }
    }

    ensure_strategy(run, task, pos);
    if (failed_ || run.state != MoRun::State::kActive) return false;
    if (!task.has_strategy) {
      // Synthesis still pending (or backing off); hold in place.
      commands.push_back(Command{task.droplet, std::nullopt, task.partner});
      return false;
    }

    std::optional<Action> action = task.strategy.action(pos);
    if (!action) {
      // The droplet drifted off the synthesized region (can happen after a
      // strategy swap); force a fresh synthesis from the current state.
      task.has_strategy = false;
      task.pending = false;
      ensure_strategy(run, task, pos);
      if (failed_ || run.state != MoRun::State::kActive) return false;
      if (task.has_strategy) action = task.strategy.action(pos);
    }
    if (!action) {
      if (task.backoff_remaining > 0 || !task.has_strategy) {
        // The ladder already took over (retry scheduled); hold meanwhile.
        commands.push_back(Command{task.droplet, std::nullopt, task.partner});
        return false;
      }
      if (config_.recovery.enabled) {
        on_synthesis_failure(run, task);
        if (run.state == MoRun::State::kActive)
          commands.push_back(
              Command{task.droplet, std::nullopt, task.partner});
        return false;
      }
      fail("strategy does not cover the droplet state for MO " +
           std::to_string(task.rj.mo));
      return false;
    }
    commands.push_back(Command{task.droplet, action, task.partner});
    return false;
  }

  /// One-shot reactive re-route from the sensed health matrix (used by the
  /// retrial-recovery comparison mode; bypasses the adaptive digest logic).
  void recover_strategy(MoRun& run, RouteTask& task, const Rect& pos) {
    ++stats_.resyntheses;
    if (!task.rj.hazard.contains(pos))
      task.rj.hazard = task.rj.hazard.union_with(pos);
    RoutingJob rj = task.rj;
    rj.start = pos;
    const std::uint64_t digest = health_digest(health_, task.rj.hazard);
    SynthesisResult result;
    const SynthesisResult* cached =
        config_.use_library ? library_.lookup(rj, digest) : nullptr;
    if (cached != nullptr) {
      ++stats_.library_hits;
      result = *cached;
    } else {
      ++stats_.synthesis_calls;
      result = synthesizer_.synthesize(rj, health_, chip_.health_bits());
      stats_.synthesis_seconds += result.total_seconds;
      if (config_.use_library && !result.deadline_expired)
        library_.store(rj, digest, result);
    }
    if (result.deadline_expired) {
      ++stats_.recovery.synthesis_deadlines;
      event(RecoveryAction::kSynthesisDeadline, task.rj.mo,
            "synthesis deadline expired during reactive recovery");
    }
    if (!result.feasible) {
      if (config_.recovery.enabled) {
        on_synthesis_failure(run, task);
      } else {
        fail("reactive recovery found no feasible strategy for MO " +
             std::to_string(task.rj.mo));
      }
      return;
    }
    task.retries = 0;
    task.strategy = std::move(result.strategy);
    // Store the baseline digest so ensure_strategy keeps the recovered
    // strategy until the droplet gets stuck again.
    task.digest = 0;
    task.has_strategy = true;
  }

  /// Retrieves / synthesizes / re-synthesizes the task's strategy
  /// (Algorithm 3 lines 11-16 plus the hybrid re-synthesis rule).
  void ensure_strategy(MoRun& run, RouteTask& task, const Rect& pos) {
    // Adopt a finished asynchronous synthesis.
    if (task.pending) {
      if (--task.pending_countdown <= 0) {
        task.strategy = std::move(task.pending_strategy);
        task.digest = task.pending_digest;
        task.has_strategy = true;
        task.pending = false;
      } else {
        return;  // keep executing the previous strategy meanwhile
      }
    }

    // A droplet can end up just outside its original zone (strategy swaps
    // and sampled outcomes both move it between syntheses); widen the
    // search bound so the re-anchored synthesis stays well-formed.
    if (!task.rj.hazard.contains(pos))
      task.rj.hazard = task.rj.hazard.union_with(pos);

    // Replica-masked synthesis view: sibling corridor bands clamped dead
    // (outside the shared funnels) make the replica routes pairwise
    // region-disjoint. The digest is taken over the *masked* view and
    // salted (kReplicaDigestSalt), so the band geometry is folded into
    // both the re-synthesis trigger and the library key.
    const bool replica_mask = task.replica >= 0 && !task.masked_bands.empty() &&
                              !task.mask_degraded && !health_.empty();
    IntMatrix replica_health;
    std::uint64_t digest =
        config_.adaptive ? health_digest(health_, task.rj.hazard) : 0;
    if (replica_mask) {
      replica_health = replica_masked_health(task, pos);
      digest = replica_digest(replica_health, task.rj.hazard);
    }
    if (task.has_strategy && digest == task.digest) return;

    if (task.has_strategy) ++stats_.resyntheses;

    RoutingJob rj = task.rj;
    rj.start = pos;  // re-anchor at the droplet's current location

    SynthesisResult result;
    const bool avoid_droplets = task.avoid_droplets_once && !health_.empty();
    task.avoid_droplets_once = false;  // one-shot, success or not
    // Contention detours synthesize against the droplet-masked health view.
    // They are cached under a position-keyed digest: hashing the *masked*
    // view folds the avoid-rectangles (the other droplets' inflated
    // footprints) into the key, so a detour entry can only be served when
    // the same obstacles sit in the same places — no poisoning of the
    // unmasked entries, which stay under the plain health digest.
    // kDetourDigestSalt separates the two key families when the matrices
    // coincide (see core/library.hpp). For replicas the droplet mask is
    // applied on top of the corridor mask.
    IntMatrix masked_health;
    std::uint64_t lookup_digest = digest;
    if (avoid_droplets) {
      masked_health = droplet_masked_health(
          task, pos, replica_mask ? replica_health : health_);
      lookup_digest = detour_digest(masked_health, task.rj.hazard);
    }

    // While a fallback route is active, full re-synthesis is under backoff:
    // a health change inside the window re-runs only the cheap fallback
    // router; the first change after the window retries the real synthesis.
    if (task.fallback_active && config_.recovery.enabled &&
        chip_.cycle() < task.fallback_retry_at) {
      install_fallback(run, task, rj, digest,
                       avoid_droplets ? &masked_health : nullptr);
      return;
    }
    if (task.fallback_active)
      obs_event("recovery", "deadline-retry", task.rj.mo,
                "backoff elapsed: retrying full synthesis");

    const DigestClass digest_class = avoid_droplets ? DigestClass::kDetour
                                     : replica_mask ? DigestClass::kReplica
                                                    : DigestClass::kPlain;
    const SynthesisResult* cached =
        config_.use_library ? library_.lookup(rj, lookup_digest, digest_class)
                            : nullptr;
    if (cached != nullptr) {
      ++stats_.library_hits;
      if (avoid_droplets) MEDA_OBS_COUNT("sched.detour_library_hits", 1);
      result = *cached;
    } else if (config_.backend != nullptr && config_.adaptive &&
               task.replica < 0) {
      // Submit-or-fallback: route the solve through the external provider.
      // The service runs its own library probe, journaling, and tenant
      // budget accounting, so the local store below is skipped for it.
      ++stats_.synthesis_calls;
      BackendOutcome outcome = config_.backend->synthesize(
          rj, avoid_droplets ? masked_health : health_, chip_.health_bits(),
          lookup_digest, digest_class);
      if (outcome.shed) {
        on_synthesis_shed(run, task, rj, digest,
                          avoid_droplets ? &masked_health : nullptr,
                          outcome.shed_reason);
        return;
      }
      result = std::move(outcome.result);
      stats_.synthesis_seconds += result.total_seconds;
      if (avoid_droplets) MEDA_OBS_COUNT("sched.detour_library_misses", 1);
    } else {
      ++stats_.synthesis_calls;
      // All of one MO's replicas draw from a single per-cycle Deadline
      // token (inactive for non-replicas — per-call arming applies).
      const util::Deadline deadline = replica_deadline(run, task);
      if (avoid_droplets) {
        MEDA_OBS_COUNT("sched.detour_library_misses", 1);
        result = synthesizer_.synthesize(rj, masked_health,
                                         chip_.health_bits(), deadline);
      } else if (config_.adaptive) {
        // The hot re-synthesis path: reuse the task's retained solver state
        // so a small health delta patches + warm-solves instead of
        // rebuilding the MDP from scratch. Replicas solve over their
        // corridor-masked view.
        result = synthesizer_.resynthesize(
            rj, replica_mask ? replica_health : health_, chip_.health_bits(),
            task.resynth, deadline);
        if (result.warm) ++stats_.resyntheses_warm;
      } else {
        result = synthesizer_.synthesize_with_force(
            rj,
            full_health_force(chip_bounds_.width(), chip_bounds_.height()));
      }
      stats_.synthesis_seconds += result.total_seconds;
      // Deadline-expired results carry no strategy and describe a solver
      // budget, not the health state — caching them would poison the key.
      if (config_.use_library && !result.deadline_expired)
        library_.store(rj, lookup_digest, result, digest_class);
    }

    if (result.deadline_expired) {
      on_synthesis_deadline(run, task, rj, digest,
                            avoid_droplets ? &masked_health : nullptr);
      return;
    }

    if (!result.feasible) {
      if (replica_mask) {
        // The corridor mask itself made the job infeasible (the band may
        // have degraded underneath the droplet): degrade this replica to
        // best-effort disjointness — recorded as such — and retry the
        // synthesis unmasked right away instead of burning the ladder.
        task.mask_degraded = true;
        ++stats_.replica.best_effort_masks;
        obs_event("replica", "mask-degraded", task.rj.mo,
                  "corridor mask infeasible for replica " +
                      std::to_string(task.replica) +
                      "; best-effort disjointness from here");
        task.resynth.valid = false;  // the retained model reflects the mask
        task.has_strategy = false;
        ensure_strategy(run, task, pos);
        return;
      }
      if (config_.recovery.enabled) {
        on_synthesis_failure(run, task);
      } else if (task.replica >= 0) {
        abandon_replica(run, task);
      } else {
        fail("no feasible routing strategy for MO " +
             std::to_string(task.rj.mo));
      }
      return;
    }
    task.retries = 0;
    if (task.fallback_active) {
      task.fallback_active = false;
      task.deadline_strikes = 0;
      obs_event("recovery", "fallback-retired", task.rj.mo,
                "full synthesis recovered; fallback route retired");
    }
    if (task.first_expected_cycles < 0.0 &&
        std::isfinite(result.expected_cycles))
      task.first_expected_cycles = result.expected_cycles;

    if (config_.synthesis_latency_cycles > 0) {
      task.pending = true;
      task.pending_countdown = config_.synthesis_latency_cycles;
      task.pending_strategy = std::move(result.strategy);
      task.pending_digest = digest;
    } else {
      task.strategy = std::move(result.strategy);
      task.digest = digest;
      task.has_strategy = true;
    }
  }

  /// The redundancy degree of one MO: the per-MO Mo::replicas annotation,
  /// raised to the config floor for dispenses feeding a mix/dilute.
  /// Replication needs the adaptive router (the baseline cannot synthesize
  /// under a corridor mask) and only applies to dispense MOs.
  int effective_replicas(const MoRun& run) const {
    if (!config_.adaptive || run.mo->type != MoType::kDispense) return 1;
    int n = run.mo->replicas;
    if (feeds_mix_[static_cast<std::size_t>(run.mo->id)] != 0)
      n = std::max(n, config_.replicate_critical_dispenses);
    return std::min(n, 8);
  }

  /// The controller's health view with this replica's sibling corridor
  /// bands clamped dead — the region mask behind pairwise-disjoint replica
  /// routes. Cells inside the shared start/goal funnels stay unmasked
  /// (every replica must reach the dispense port and converge on the
  /// goal), as do the droplet's own cells (it may straddle a band edge).
  IntMatrix replica_masked_health(const RouteTask& task,
                                  const Rect& pos) const {
    IntMatrix masked = health_;
    for (const Rect& band : task.masked_bands) {
      const Rect area = band.intersection_with(chip_bounds_);
      if (!area.valid()) continue;
      for (int y = area.ya; y <= area.yb; ++y)
        for (int x = area.xa; x <= area.xb; ++x) {
          if (pos.contains(x, y)) continue;
          if (task.start_funnel.contains(x, y) ||
              task.goal_funnel.contains(x, y))
            continue;
          masked(x, y) = 0;
        }
    }
    return masked;
  }

  /// The shared synthesis budget of a replicated MO: every replica's solve
  /// in one chip cycle draws from a single Deadline token, re-armed once
  /// per cycle from the configured budget — N replicas never multiply the
  /// budget N×. Inactive (per-call arming applies) for non-replica tasks
  /// or when no budget is configured.
  util::Deadline replica_deadline(MoRun& run, const RouteTask& task) {
    if (task.replica < 0) return {};
    if (run.replica_deadline_cycle != chip_.cycle()) {
      run.replica_deadline_cycle = chip_.cycle();
      if (config_.synthesis.deadline_sweeps > 0)
        run.replica_deadline =
            util::Deadline::after_checks(config_.synthesis.deadline_sweeps);
      else if (config_.synthesis.deadline_seconds > 0.0)
        run.replica_deadline =
            util::Deadline::after_seconds(config_.synthesis.deadline_seconds);
      else
        run.replica_deadline = util::Deadline{};
    }
    return run.replica_deadline;
  }

  /// Seals one replica's outcome record (idempotent per task).
  void record_replica_route(RouteTask& task, bool winner) {
    if (task.replica < 0 || task.replica_recorded) return;
    task.replica_recorded = true;
    ReplicaRouteRecord record;
    record.mo = task.rj.mo;
    record.replica = task.replica;
    record.winner = winner;
    record.abandoned = task.abandoned;
    record.mask_best_effort = task.mask_best_effort || task.mask_degraded;
    record.band = task.band;
    record.start_funnel = task.start_funnel;
    record.goal_funnel = task.goal_funnel;
    record.trail = std::move(task.trail);
    stats_.replica_routes.push_back(std::move(record));
  }

  /// Ladder rung between quarantine and per-job abort: a replica that
  /// exhausted its per-replica retry budget is abandoned — its droplet is
  /// discarded and its siblings race on — instead of aborting the MO. Only
  /// the failure of the last replica escalates to the graceful abort.
  void abandon_replica(MoRun& run, RouteTask& task) {
    if (task.abandoned) return;
    task.abandoned = true;
    ++run.abandoned_replicas;
    ++stats_.replica.failovers;
    stats_.replica.droplet_cycles += chip_.cycle() - task.created_cycle;
    event(RecoveryAction::kReplicaFailover, run.mo->id,
          "replica " + std::to_string(task.replica) + " abandoned after " +
              std::to_string(task.retries) + " attempt(s); " +
              std::to_string(run.replicas_planned - run.abandoned_replicas) +
              " remain");
    record_replica_route(task, /*winner=*/false);
    close_job_span(task, "abandoned");
    doomed_.push_back(task.droplet);
    std::erase(run.live, task.droplet);
    if (run.abandoned_replicas >= run.replicas_planned)
      abort_job(run, "all " + std::to_string(run.replicas_planned) +
                         " replicas failed");
  }

  /// Hands a losing replica over to the retirement queue: it leaves the MO
  /// (which completes regardless) and drains to the nearest chip edge.
  void retire_replica(MoRun& run, RouteTask& task) {
    ++stats_.replica.retired;
    stats_.replica.droplet_cycles += chip_.cycle() - task.created_cycle;
    record_replica_route(task, /*winner=*/false);
    close_job_span(task, "retired");
    obs_event("replica", "retire", run.mo->id,
              "replica " + std::to_string(task.replica) +
                  " lost the vote; retiring to waste");
    RetireTask retiree;
    retiree.droplet = task.droplet;
    retiree.mo = run.mo->id;
    retiree.created_cycle = chip_.cycle();
    retiree.last_pos = chip_.droplet_position(task.droplet);
    retiring_.push_back(std::move(retiree));
  }

  /// Discards one retiring replica and charges its drain traffic.
  void finish_retirement(std::size_t i, const std::string& reason) {
    RetireTask& retiree = retiring_[i];
    stats_.replica.droplet_cycles += chip_.cycle() - retiree.created_cycle;
    obs_event("replica", "retired", retiree.mo, reason);
    chip_.discard(retiree.droplet);
    retiring_.erase(retiring_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  /// Drives every retiring replica one cycle toward the chip edge on cheap
  /// fallback routes (no model checking for waste disposal); arrival, a
  /// persistent blockage, or an exhausted replan budget discards it.
  void advance_retirements(std::vector<Command>& commands) {
    constexpr int kRetireStuckCycles = 8;
    constexpr int kRetireMaxReplans = 4;
    for (std::size_t i = 0; i < retiring_.size();) {
      RetireTask& retiree = retiring_[i];
      if (retiree.created_cycle == chip_.cycle()) {
        ++i;  // handed over this cycle — its route command is already out
        continue;
      }
      const Rect pos = chip_.droplet_position(retiree.droplet);
      if (retiree.has_strategy && retiree.goal.contains(pos)) {
        finish_retirement(i, "reached the waste edge");
        continue;
      }
      if (retiree.has_strategy && pos == retiree.last_pos) {
        if (++retiree.stuck >= kRetireStuckCycles) {
          retiree.stuck = 0;
          retiree.has_strategy = false;  // replan around the blockage
        }
      } else {
        retiree.last_pos = pos;
        retiree.stuck = 0;
      }
      if (!retiree.has_strategy) {
        if (retiree.replans >= kRetireMaxReplans || health_.empty()) {
          finish_retirement(i, "no waste route; discarded in place");
          continue;
        }
        ++retiree.replans;
        RoutingJob rj;
        rj.start = pos;
        rj.goal = dispense_entry_rect(pos, chip_bounds_);
        rj.hazard =
            assay::zone(rj.start, rj.goal, chip_bounds_, config_.zone_margin);
        rj.mo = retiree.mo;
        FallbackConfig fallback_config;
        fallback_config.rules = config_.synthesis.rules;
        fallback_config.max_expansions =
            config_.recovery.fallback_max_expansions;
        FallbackResult fallback =
            fallback_route(rj, health_, chip_bounds_, fallback_config);
        if (!fallback.feasible) {
          finish_retirement(i, "no waste route; discarded in place");
          continue;
        }
        retiree.goal = rj.goal;
        retiree.strategy = std::move(fallback.strategy);
        retiree.has_strategy = true;
      }
      const std::optional<Action> action = retiree.strategy.action(pos);
      if (!action) retiree.has_strategy = false;  // drifted off; replan next
      commands.push_back(Command{retiree.droplet, action, -1});
      ++i;
    }
  }

  /// Dispense machine for a replicated MO (effective N > 1). Phase 0 plans
  /// the disjoint corridors; then one replica launches per cycle through
  /// the shared port while the live ones race. The first arrival completes
  /// the MO (k = 1 of N vote) and the losers retire to waste.
  void process_replicated_dispense(MoRun& run, std::vector<Command>& commands,
                                   int replicas, const Rect& goal) {
    const Mo& mo = *run.mo;
    const Rect entry = dispense_entry_rect(goal, chip_bounds_);
    if (run.phase == 0) {
      run.replicas_planned = replicas;
      RoutingJob seed;
      seed.start = entry;
      seed.goal = goal;
      seed.hazard = assay::zone(entry, goal, chip_bounds_, config_.zone_margin);
      seed.mo = mo.id;
      run.corridors = plan_replica_corridors(seed, replicas, chip_bounds_);
      if (!run.corridors.disjoint) {
        ++stats_.replica.best_effort_masks;
        obs_event("replica", "best-effort-mask", mo.id,
                  "zone too thin for " + std::to_string(replicas) +
                      " disjoint corridors; replicas share the full zone");
      }
      obs_event("replica", "corridors-planned", mo.id,
                std::to_string(replicas) + " replica(s), disjointness=" +
                    (run.corridors.disjoint ? "full" : "best-effort"));
      run.phase = 1;
    }
    // Launch at most one replica per cycle — the dispense port is shared.
    int just_launched = -1;
    if (run.launched < run.replicas_planned && chip_.location_clear(entry)) {
      const DropletId d = chip_.dispense(entry);
      run.live.push_back(d);
      RouteTask task = make_route(mo.id, d, goal);
      const ReplicaCorridor& corridor =
          run.corridors.corridors[static_cast<std::size_t>(run.launched)];
      task.replica = run.launched;
      task.band = corridor.band;
      task.masked_bands = corridor.masked;
      task.start_funnel = run.corridors.start_funnel;
      task.goal_funnel = run.corridors.goal_funnel;
      task.mask_best_effort = !run.corridors.disjoint;
      obs_event("replica", "launch", mo.id,
                "replica " + std::to_string(task.replica) + " of " +
                    std::to_string(run.replicas_planned) + " dispensed");
      run.routes.push_back(std::move(task));
      just_launched = run.launched;
      ++run.launched;
      ++stats_.replica.launched;
    }
    // Race the live replicas; the first arrival wins the vote.
    RouteTask* winner = nullptr;
    for (RouteTask& task : run.routes) {
      if (task.abandoned) continue;
      if (task.replica == just_launched) continue;  // dispensing used its cycle
      if (config_.record_replica_trails)
        task.trail.push_back(chip_.droplet_position(task.droplet));
      const bool arrived = advance_route(run, task, commands);
      if (failed_ || run.state != MoRun::State::kActive) return;
      if (arrived) {
        winner = &task;
        break;
      }
    }
    if (winner == nullptr) return;
    ++stats_.replica.merges;
    obs_event("replica", "merge", mo.id,
              "replica " + std::to_string(winner->replica) +
                  " arrived first of " + std::to_string(run.launched) +
                  "; MO completes (k = 1 of " +
                  std::to_string(run.replicas_planned) + ")");
    record_replica_route(*winner, /*winner=*/true);
    for (RouteTask& task : run.routes) {
      if (&task == winner || task.abandoned) continue;
      retire_replica(run, task);
      std::erase(run.live, task.droplet);
    }
    finish(run, {winner->droplet});
  }

  /// Where two partnered droplets merge: the output-sized pattern centered
  /// on the contact centroid, clamped to the chip.
  Rect merge_site(DropletId a, DropletId b, int merged_area) const {
    const Rect pa = chip_.droplet_position(a);
    const Rect pb = chip_.droplet_position(b);
    const Rect box = pa.union_with(pb);
    const assay::DropletSize size = assay::size_for_area(merged_area);
    return clamp_into(
        Rect::from_center(box.center_x(), box.center_y(), size.w, size.h),
        chip_bounds_);
  }

  /// Mix machine shared by kMix and kDilute. Phases:
  ///   0 — create both routing jobs (all of the MO's droplets move
  ///       concurrently, per Algorithm 3);
  ///   1 — route until the partners are in contact, then merge;
  ///   2 — transport the merged droplet to the mixer location;
  ///   3 — hold for the mixing duration.
  /// Leaves run.phase == 4 when complete.
  void process_mix_phases(MoRun& run, std::vector<Command>& commands) {
    const Mo& mo = *run.mo;
    if (run.phase == 0) {
      run.routes.clear();
      run.routes.push_back(make_route(mo.id, run.in[0],
                                      placed_rect(mo.locs[0],
                                                  droplet_area(run.in[0])),
                                      /*partner=*/run.in[1]));
      run.routes.push_back(make_route(mo.id, run.in[1],
                                      placed_rect(mo.locs[0],
                                                  droplet_area(run.in[1])),
                                      /*partner=*/run.in[0]));
      run.phase = 1;
    }
    if (run.phase == 1) {
      if (chip_.droplet_position(run.in[0])
              .manhattan_gap(chip_.droplet_position(run.in[1])) <= 1) {
        // The partnered routes end here (contact), not via advance_route.
        for (RouteTask& task : run.routes) close_job_span(task, "merged");
        const int merged_area =
            droplet_area(run.in[0]) + droplet_area(run.in[1]);
        run.merged = chip_.merge(run.in[0], run.in[1],
                                 merge_site(run.in[0], run.in[1],
                                            merged_area));
        run.live = {run.merged};
        run.phase = 2;
        return;  // merging consumes the cycle
      }
      // Route the partner with the shorter remaining distance second so the
      // pair tends to meet near the mixer; both droplets are commanded.
      advance_route(run, run.routes[0], commands);
      if (failed_ || run.state != MoRun::State::kActive) return;
      advance_route(run, run.routes[1], commands);
      return;
    }
    if (run.phase == 2) {
      run.routes.clear();
      const Rect goal = placed_rect(mo.locs[0], droplet_area(run.merged));
      run.routes.push_back(make_route(mo.id, run.merged, goal));
      run.phase = 3;
    }
    if (run.phase == 3) {
      if (advance_route(run, run.routes[0], commands)) {
        run.hold_remaining = mo.hold_cycles;
        run.phase = 4;
      }
      return;
    }
    if (run.phase == 4) {
      if (run.hold_remaining > 0) {
        --run.hold_remaining;
        return;
      }
      run.phase = 5;
    }
  }

  /// Drives one MO's phase machine for one cycle.
  void process(MoRun& run, std::vector<Command>& commands) {
    const Mo& mo = *run.mo;
    const int id = mo.id;
    const auto& mo_outputs = outputs_[static_cast<std::size_t>(id)];
    switch (mo.type) {
      case MoType::kDispense: {
        const int replicas = effective_replicas(run);
        if (replicas > 1) {
          process_replicated_dispense(run, commands, replicas, mo_outputs[0]);
          return;
        }
        if (run.phase == 0) {
          const Rect entry = dispense_entry_rect(mo_outputs[0], chip_bounds_);
          if (!chip_.location_clear(entry)) return;  // port busy; wait
          const DropletId d = chip_.dispense(entry);
          run.in = {d};
          run.live = {d};
          run.routes = {make_route(id, d, mo_outputs[0])};
          run.phase = 1;
          return;  // dispensing consumes the cycle
        }
        if (advance_route(run, run.routes[0], commands))
          finish(run, {run.routes[0].droplet});
        return;
      }
      case MoType::kOutput:
      case MoType::kDiscard: {
        if (run.phase == 0) {
          const Rect goal = placed_rect(mo.locs[0], droplet_area(run.in[0]));
          run.routes = {make_route(id, run.in[0], goal)};
          run.phase = 1;
        }
        if (run.phase == 1) {
          if (advance_route(run, run.routes[0], commands)) run.phase = 2;
          return;
        }
        chip_.discard(run.routes[0].droplet);  // exits through the edge
        finish(run, {});
        return;
      }
      case MoType::kMagSense: {
        if (run.phase == 0) {
          const Rect goal = placed_rect(mo.locs[0], droplet_area(run.in[0]));
          run.routes = {make_route(id, run.in[0], goal)};
          run.phase = 1;
        }
        if (run.phase == 1) {
          if (advance_route(run, run.routes[0], commands)) {
            run.phase = 2;
            run.hold_remaining = mo.hold_cycles;
          }
          return;
        }
        if (run.hold_remaining > 0) {
          --run.hold_remaining;  // droplet held (and actuated) in place
          return;
        }
        finish(run, {run.routes[0].droplet});
        return;
      }
      case MoType::kMix: {
        process_mix_phases(run, commands);
        if (run.phase == 5) finish(run, {run.merged});
        return;
      }
      case MoType::kSplit: {
        if (run.phase == 0) {
          const Rect pos = chip_.droplet_position(run.in[0]);
          const int area = pos.area();
          const auto [r0, r1] =
              split_rects(pos, (area + 1) / 2, area / 2, chip_bounds_);
          if (!chip_.split_clear(run.in[0], r0, r1)) return;  // wait
          run.parts = chip_.split(run.in[0], r0, r1);
          run.live = {run.parts.first, run.parts.second};
          run.phase = 1;
          return;  // splitting consumes the cycle
        }
        if (run.phase == 1) {
          run.routes = {make_route(id, run.parts.first, mo_outputs[0]),
                        make_route(id, run.parts.second, mo_outputs[1])};
          run.phase = 2;
        }
        // Route both parts concurrently; done when both have arrived.
        const bool a0 = advance_route(run, run.routes[0], commands);
        if (failed_ || run.state != MoRun::State::kActive) return;
        const bool a1 = advance_route(run, run.routes[1], commands);
        if (a0 && a1) finish(run, {run.parts.first, run.parts.second});
        return;
      }
      case MoType::kDilute: {
        // Mix at loc[0] (phases 0-4), split (5), then distribute: the
        // departing half routes to loc[1] before the stayer settles at
        // loc[0], so it cannot block the stayer's goal.
        process_mix_phases(run, commands);
        if (run.state != MoRun::State::kActive) return;
        if (run.phase < 5) return;
        if (run.phase == 5) {
          const Rect pos = chip_.droplet_position(run.merged);
          const int area = pos.area();
          const auto [r0, r1] =
              split_rects(pos, (area + 1) / 2, area / 2, chip_bounds_);
          if (!chip_.split_clear(run.merged, r0, r1)) return;  // wait
          run.parts = chip_.split(run.merged, r0, r1);
          run.live = {run.parts.first, run.parts.second};
          run.phase = 6;
          return;  // splitting consumes the cycle
        }
        if (run.phase == 6) {
          run.routes = {make_route(id, run.parts.second, mo_outputs[1])};
          run.phase = 7;
        }
        if (run.phase == 7) {
          if (advance_route(run, run.routes[0], commands)) run.phase = 8;
          return;
        }
        if (run.phase == 8) {
          run.routes = {make_route(id, run.parts.first, mo_outputs[0])};
          run.phase = 9;
        }
        if (advance_route(run, run.routes[0], commands))
          finish(run, {run.parts.first, run.parts.second});
        return;
      }
    }
  }

  const SchedulerConfig& config_;
  StrategyLibrary& library_;
  BiochipIo& chip_;
  const MoList& assay_;
  Rect chip_bounds_;
  Synthesizer synthesizer_;
  std::vector<std::vector<Rect>> outputs_;
  std::vector<MoRun> runs_;
  ExecutionStats stats_;
  std::uint64_t start_cycle_ = 0;
  bool failed_ = false;
  std::string failure_reason_;
  // Sensing / recovery state.
  bool senses_health_ = false;
  IntMatrix health_;  ///< the controller's current health view
  HealthFilter filter_;
  BoolMatrix quarantined_;
  int quarantine_count_ = 0;
  int quarantined_suspects_seen_ = 0;
  bool quarantine_budget_hit_ = false;
  std::vector<Vec2i> quarantine_order_;  ///< FIFO for budget-pressure parole
  std::vector<DropletId> doomed_;  ///< droplets to discard at cycle end
  std::vector<std::string> abort_reasons_;
  // N-modular redundancy state.
  std::vector<char> feeds_mix_;      ///< per MO: dispense feeding a mix/dilute
  std::vector<RetireTask> retiring_; ///< losing replicas draining to waste
  // Observability bookkeeping.
  std::uint64_t job_serial_ = 0;           ///< async job-span id source
  std::int64_t health_changes_total_ = 0;  ///< health-view changes so far
  std::uint64_t last_health_digest_ = 0;
  bool has_health_digest_ = false;
};

}  // namespace

Scheduler::Scheduler(SchedulerConfig config, StrategyLibrary* library)
    : config_(config), shared_library_(library) {}

ExecutionStats Scheduler::run(BiochipIo& chip, const MoList& assay_list) {
  assay::validate(assay_list, chip.bounds());
  StrategyLibrary private_library;
  StrategyLibrary& library =
      shared_library_ != nullptr ? *shared_library_ : private_library;
  Runner runner(config_, library, chip, assay_list);
  return runner.execute();
}

void RunRollup::absorb(const ExecutionStats& stats) {
  ++runs;
  if (stats.success) {
    ++successes;
    cycles.add(static_cast<double>(stats.cycles));
  }
  completed_mos += stats.completed_mos;
  aborted_mos += stats.aborted_mos;
  synthesis_calls += stats.synthesis_calls;
  library_hits += stats.library_hits;
  resyntheses += stats.resyntheses;
  resyntheses_warm += stats.resyntheses_warm;
  synthesis_seconds += stats.synthesis_seconds;
  recovery.accumulate(stats.recovery);
  replica += stats.replica;
}

}  // namespace meda::core
