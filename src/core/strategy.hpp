#pragma once

#include <optional>
#include <unordered_map>

#include "geometry/rect.hpp"
#include "model/action.hpp"

/// @file strategy.hpp
/// A synthesized droplet routing strategy π: droplet state → microfluidic
/// action (Section VI-C). Memoryless and deterministic — value iteration on
/// an MDP always admits an optimal strategy of this form.

namespace meda::core {

/// Mapping from droplet rectangles to the optimal action.
class Strategy {
 public:
  /// Records the action for @p droplet (overwrites a previous entry).
  void set(const Rect& droplet, Action action) { map_[droplet] = action; }

  /// The action prescribed for @p droplet, or nullopt if the state is not
  /// covered (e.g. the droplet drifted outside the synthesized region and a
  /// re-synthesis is required).
  std::optional<Action> action(const Rect& droplet) const {
    const auto it = map_.find(droplet);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::unordered_map<Rect, Action> map_;
};

}  // namespace meda::core
