#include "core/fallback_router.hpp"

#include <cstdint>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/action.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

/// Admissible cycle lower bound: a single action moves the droplet at most
/// two cells closer (double steps), and the gap is 0 once the rectangles
/// touch — never more than the true remaining action count.
int heuristic(const Rect& droplet, const Rect& goal) {
  const int gap = droplet.manhattan_gap(goal);
  return (gap + 1) / 2;
}

/// Cells the action pulls the droplet onto must be alive; cells already
/// under the droplet are occluded from sensing and exempt.
bool new_cells_healthy(const Rect& next, const Rect& cur,
                       const IntMatrix& health, int min_health) {
  for (int y = next.ya; y <= next.yb; ++y)
    for (int x = next.xa; x <= next.xb; ++x) {
      if (cur.contains(x, y)) continue;
      if (health(x, y) < min_health) return false;
    }
  return true;
}

}  // namespace

FallbackResult fallback_route(const assay::RoutingJob& rj,
                              const IntMatrix& health, const Rect& chip,
                              const FallbackConfig& config) {
  MEDA_REQUIRE(rj.start.valid() && rj.goal.valid() && rj.hazard.valid(),
               "routing job rectangles must be valid");
  MEDA_REQUIRE(chip.contains(rj.start), "start droplet must be on the chip");
  MEDA_REQUIRE(rj.hazard.contains(rj.start),
               "start droplet must lie within the hazard bounds");
  MEDA_REQUIRE(health.width() == chip.width() &&
                   health.height() == chip.height(),
               "health matrix must be chip-sized");
  MEDA_REQUIRE(config.max_expansions > 0,
               "fallback expansion budget must be positive");

  MEDA_OBS_SPAN(span, "synth", "fallback_route");
  FallbackResult result;

  // Min-heap on (f, insertion sequence): the sequence tie-break plus the
  // fixed kAllActions neighbor order makes the search fully deterministic.
  using QueueEntry = std::tuple<int, std::uint64_t, Rect>;
  auto later = [](const QueueEntry& a, const QueueEntry& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) >
           std::tie(std::get<0>(b), std::get<1>(b));
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(later)>
      open(later);
  std::unordered_map<Rect, int> g_cost;
  std::unordered_map<Rect, std::pair<Rect, Action>> came_from;

  std::uint64_t seq = 0;
  g_cost[rj.start] = 0;
  open.emplace(heuristic(rj.start, rj.goal), seq++, rj.start);

  Rect goal_state = Rect::none();
  while (!open.empty() && result.expansions < config.max_expansions) {
    const auto [f, order, cur] = open.top();
    open.pop();
    const int g = g_cost.at(cur);
    if (f > g + heuristic(cur, rj.goal)) continue;  // stale queue entry
    ++result.expansions;
    if (rj.goal.contains(cur)) {
      goal_state = cur;
      break;
    }
    for (const Action a : kAllActions) {
      if (!action_enabled(a, cur, config.rules, chip)) continue;
      const Rect next = apply(a, cur);
      if (!rj.hazard.contains(next)) continue;
      if (!new_cells_healthy(next, cur, health, config.min_health)) continue;
      const int next_g = g + 1;
      const auto it = g_cost.find(next);
      if (it != g_cost.end() && it->second <= next_g) continue;
      g_cost[next] = next_g;
      came_from[next] = {cur, a};
      open.emplace(next_g + heuristic(next, rj.goal), seq++, next);
    }
  }

  if (goal_state.valid()) {
    result.feasible = true;
    // Walk the path backwards; each predecessor re-commands its action, and
    // the failed-pull self-loop retries it until the droplet moves.
    Rect state = goal_state;
    while (true) {
      const auto it = came_from.find(state);
      if (it == came_from.end()) break;
      result.strategy.set(it->second.first, it->second.second);
      state = it->second.first;
      ++result.path_length;
    }
  }

  MEDA_OBS_COUNT("fallback.routes", 1);
  if (!result.feasible) MEDA_OBS_COUNT("fallback.infeasible", 1);
  MEDA_OBS_OBSERVE("fallback.expansions",
                   static_cast<double>(result.expansions), obs::kPow2Buckets);
  span.arg("expansions", static_cast<std::int64_t>(result.expansions));
  span.arg("path_length", static_cast<std::int64_t>(result.path_length));
  span.arg("feasible", static_cast<std::int64_t>(result.feasible ? 1 : 0));
  return result;
}

}  // namespace meda::core
