#include "core/library.hpp"

#include "obs/obs.hpp"

namespace meda::core {

const char* to_string(DigestClass cls) {
  switch (cls) {
    case DigestClass::kPlain: return "plain";
    case DigestClass::kDetour: return "detour";
    case DigestClass::kReplica: return "replica";
  }
  return "plain";
}

namespace {

LibraryClassStats& class_stats(LibraryStats& stats, DigestClass cls) {
  switch (cls) {
    case DigestClass::kPlain: return stats.plain;
    case DigestClass::kDetour: return stats.detour;
    case DigestClass::kReplica: return stats.replica;
  }
  return stats.plain;
}

}  // namespace

std::uint64_t health_digest(const IntMatrix& health, const Rect& area) {
  const Rect chip{0, 0, health.width() - 1, health.height() - 1};
  const Rect clipped = area.intersection_with(chip);
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  if (!clipped.valid()) return h;
  for (int y = clipped.ya; y <= clipped.yb; ++y)
    for (int x = clipped.xa; x <= clipped.xb; ++x)
      mix(static_cast<std::uint64_t>(health(x, y)) + 1);
  return h;
}

std::uint64_t detour_digest(const IntMatrix& masked_health, const Rect& area) {
  return health_digest(masked_health, area) ^ kDetourDigestSalt;
}

std::uint64_t replica_digest(const IntMatrix& masked_health,
                             const Rect& area) {
  return health_digest(masked_health, area) ^ kReplicaDigestSalt;
}

std::size_t StrategyLibrary::KeyHash::operator()(const Key& k) const noexcept {
  std::size_t h = std::hash<Rect>{}(k.start);
  auto mixin = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mixin(std::hash<Rect>{}(k.goal));
  mixin(std::hash<Rect>{}(k.hazard));
  mixin(std::hash<std::uint64_t>{}(k.digest));
  return h;
}

const SynthesisResult* StrategyLibrary::lookup_locked(
    const assay::RoutingJob& rj, std::uint64_t digest, DigestClass cls,
    int tenant) const {
  const std::uint64_t now = tick_++;
  LibraryClassStats& s = class_stats(stats_, cls);
  const Key key{rj.start, rj.goal, rj.hazard, digest};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++s.misses;
    if (tenant >= 0) ++class_stats(tenant_stats_[tenant], cls).misses;
    MEDA_OBS_COUNT(std::string("library.") + to_string(cls) + ".misses", 1);
    return nullptr;
  }
  ++s.hits;
  if (tenant >= 0) ++class_stats(tenant_stats_[tenant], cls).hits;
  MEDA_OBS_COUNT(std::string("library.") + to_string(cls) + ".hits", 1);
  // Reuse distance on the operation clock: library ops between this entry's
  // insertion and this hit. Deterministic for a fixed workload.
  MEDA_OBS_OBSERVE_LOG2("library.entry_age",
                        static_cast<double>(now - it->second.inserted_tick));
  return &it->second.result;
}

const SynthesisResult* StrategyLibrary::lookup(const assay::RoutingJob& rj,
                                               std::uint64_t digest,
                                               DigestClass cls,
                                               int tenant) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return lookup_locked(rj, digest, cls, tenant);
}

std::optional<SynthesisResult> StrategyLibrary::lookup_copy(
    const assay::RoutingJob& rj, std::uint64_t digest, DigestClass cls,
    int tenant) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const SynthesisResult* hit = lookup_locked(rj, digest, cls, tenant);
  if (hit == nullptr) return std::nullopt;
  return *hit;  // copied while the lock still pins the entry
}

void StrategyLibrary::store(const assay::RoutingJob& rj, std::uint64_t digest,
                            SynthesisResult result, DigestClass cls,
                            int tenant) {
  std::lock_guard<std::mutex> lock(*mutex_);
  const std::uint64_t now = tick_++;
  LibraryClassStats& s = class_stats(stats_, cls);
  MEDA_OBS_OBSERVE_LOG2("library.strategy_cells",
                        static_cast<double>(result.strategy.size()));
  const Key key{rj.start, rj.goal, rj.hazard, digest};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Overwrite in place, keeping the original insertion tick (and thus
    // the entry's FIFO position — refreshing content does not renew age).
    it->second.result = std::move(result);
    ++s.overwrites;
    if (tenant >= 0) ++class_stats(tenant_stats_[tenant], cls).overwrites;
    MEDA_OBS_COUNT(std::string("library.") + to_string(cls) + ".overwrites",
                   1);
    return;
  }
  if (capacity_ > 0) evict_down_to(capacity_ - 1);
  entries_.emplace(key, Entry{std::move(result), now, cls});
  insertion_order_.emplace(now, key);
  ++s.inserts;
  if (tenant >= 0) ++class_stats(tenant_stats_[tenant], cls).inserts;
  MEDA_OBS_COUNT(std::string("library.") + to_string(cls) + ".inserts", 1);
}

void StrategyLibrary::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(*mutex_);
  capacity_ = capacity;
  if (capacity_ > 0) evict_down_to(capacity_);
}

void StrategyLibrary::evict_down_to(std::size_t limit) {
  while (entries_.size() > limit && !insertion_order_.empty()) {
    const auto oldest = insertion_order_.begin();
    const auto it = entries_.find(oldest->second);
    if (it != entries_.end()) {
      const DigestClass cls = it->second.cls;
      LibraryClassStats& s = class_stats(stats_, cls);
      ++s.evictions;
      MEDA_OBS_COUNT(std::string("library.") + to_string(cls) + ".evictions",
                     1);
      entries_.erase(it);
    }
    insertion_order_.erase(oldest);
  }
}

void StrategyLibrary::clear() {
  std::lock_guard<std::mutex> lock(*mutex_);
  entries_.clear();
  insertion_order_.clear();
  tick_ = 0;
  stats_ = LibraryStats{};
  tenant_stats_.clear();
}

std::vector<StrategyLibrary::EntryView> StrategyLibrary::entries() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<EntryView> views;
  views.reserve(entries_.size());
  for (const auto& [key, entry] : entries_)
    views.push_back(EntryView{key.start, key.goal, key.hazard, key.digest,
                              &entry.result});
  std::sort(views.begin(), views.end(),
            [](const EntryView& a, const EntryView& b) {
              return std::tie(a.start, a.goal, a.hazard, a.digest) <
                     std::tie(b.start, b.goal, b.hazard, b.digest);
            });
  return views;
}

}  // namespace meda::core
