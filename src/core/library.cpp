#include "core/library.hpp"

namespace meda::core {

std::uint64_t health_digest(const IntMatrix& health, const Rect& area) {
  const Rect chip{0, 0, health.width() - 1, health.height() - 1};
  const Rect clipped = area.intersection_with(chip);
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  if (!clipped.valid()) return h;
  for (int y = clipped.ya; y <= clipped.yb; ++y)
    for (int x = clipped.xa; x <= clipped.xb; ++x)
      mix(static_cast<std::uint64_t>(health(x, y)) + 1);
  return h;
}

std::uint64_t detour_digest(const IntMatrix& masked_health, const Rect& area) {
  return health_digest(masked_health, area) ^ kDetourDigestSalt;
}

std::size_t StrategyLibrary::KeyHash::operator()(const Key& k) const noexcept {
  std::size_t h = std::hash<Rect>{}(k.start);
  auto mixin = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mixin(std::hash<Rect>{}(k.goal));
  mixin(std::hash<Rect>{}(k.hazard));
  mixin(std::hash<std::uint64_t>{}(k.digest));
  return h;
}

const SynthesisResult* StrategyLibrary::lookup(const assay::RoutingJob& rj,
                                               std::uint64_t digest) const {
  const Key key{rj.start, rj.goal, rj.hazard, digest};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void StrategyLibrary::store(const assay::RoutingJob& rj, std::uint64_t digest,
                            SynthesisResult result) {
  const Key key{rj.start, rj.goal, rj.hazard, digest};
  entries_[key] = std::move(result);
}

void StrategyLibrary::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::vector<StrategyLibrary::EntryView> StrategyLibrary::entries() const {
  std::vector<EntryView> views;
  views.reserve(entries_.size());
  for (const auto& [key, result] : entries_)
    views.push_back(EntryView{key.start, key.goal, key.hazard, key.digest,
                              &result});
  std::sort(views.begin(), views.end(),
            [](const EntryView& a, const EntryView& b) {
              return std::tie(a.start, a.goal, a.hazard, a.digest) <
                     std::tie(b.start, b.goal, b.hazard, b.digest);
            });
  return views;
}

}  // namespace meda::core
