#include "core/synthesizer.hpp"

#include <cmath>

#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

/// Extracts the strategy recorded by a solver run.
Strategy extract_strategy(const RoutingMdp& mdp, const Solution& sol) {
  Strategy strategy;
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    const int c = sol.chosen[s];
    if (c < 0) continue;
    strategy.set(mdp.droplets[s], mdp.choices[s][static_cast<std::size_t>(c)]
                                      .action);
  }
  return strategy;
}

void record_model_metrics(const ModelStats& stats) {
  MEDA_OBS_COUNT("synth.calls", 1);
  MEDA_OBS_OBSERVE("synth.mdp_states", static_cast<double>(stats.states),
                   obs::kStateCountBuckets);
  MEDA_OBS_OBSERVE("synth.mdp_transitions",
                   static_cast<double>(stats.transitions),
                   obs::kStateCountBuckets);
}

}  // namespace

Synthesizer::Synthesizer(Rect chip_bounds, SynthesisConfig config)
    : chip_bounds_(chip_bounds), config_(config) {
  MEDA_REQUIRE(chip_bounds.valid(), "invalid chip bounds");
}

SynthesisResult Synthesizer::synthesize(const assay::RoutingJob& rj,
                                        const IntMatrix& health,
                                        int health_bits) const {
  MEDA_REQUIRE(health.width() == chip_bounds_.width() &&
                   health.height() == chip_bounds_.height(),
               "health matrix must be chip-sized");
  return synthesize_with_force(
      rj, force_from_health(health, health_bits, config_.estimator));
}

SynthesisResult Synthesizer::synthesize_with_force(
    const assay::RoutingJob& rj, const DoubleMatrix& force) const {
  SynthesisResult result;
  MEDA_OBS_SPAN(span, "synth", "synthesize");
  obs::Stopwatch watch;

  // A fresh token per call: each synthesis gets the full budget, and an
  // expired token from one job can never starve the next. The sweep budget
  // wins over the wall-clock budget because it is deterministic.
  SolveConfig solver = config_.solver;
  if (config_.deadline_sweeps > 0)
    solver.deadline = util::Deadline::after_checks(config_.deadline_sweeps);
  else if (config_.deadline_seconds > 0.0)
    solver.deadline = util::Deadline::after_seconds(config_.deadline_seconds);

  {
    MEDA_OBS_SPAN(build_span, "synth", "mdp_build");
    const RoutingMdp mdp =
        build_routing_mdp(rj, force, chip_bounds_, config_.rules,
                          config_.wear_penalty_lambda);
    result.stats = mdp.stats();
    build_span.arg("states", static_cast<std::int64_t>(result.stats.states));
    build_span.arg("transitions",
                   static_cast<std::int64_t>(result.stats.transitions));
    build_span.arg("choices",
                   static_cast<std::int64_t>(result.stats.choices));
    result.construction_seconds = watch.lap_seconds();

    solve_and_extract(mdp, solver, result);
  }

  result.total_seconds = watch.total_seconds();
  record_model_metrics(result.stats);
  MEDA_OBS_OBSERVE("synth.total_seconds", result.total_seconds,
                   obs::kSecondsBuckets);
  if (!result.feasible) MEDA_OBS_COUNT("synth.infeasible", 1);
  if (result.deadline_expired) MEDA_OBS_COUNT("synth.deadline_expired", 1);
  span.arg("states", static_cast<std::int64_t>(result.stats.states));
  span.arg("feasible", static_cast<std::int64_t>(result.feasible ? 1 : 0));
  span.arg("deadline_expired",
           static_cast<std::int64_t>(result.deadline_expired ? 1 : 0));
  span.arg("reach_probability", result.reach_probability);
  return result;
}

void Synthesizer::solve_and_extract(const RoutingMdp& mdp,
                                    const SolveConfig& solver,
                                    SynthesisResult& result) const {
  obs::Stopwatch watch;
  // Compile once and answer both queries from the shared model: the pmax
  // pass doubles as rmin's winning-region computation, so every synthesis
  // runs exactly one pmax and one rmin (the legacy path ran pmax twice).
  const ReachAvoidSolution sol = solve_reach_avoid(mdp, solver);
  const Solution& pmax = sol.pmax;
  const Solution& rmin = sol.rmin;
  if (pmax.deadline_expired || rmin.deadline_expired) {
    // Partial sweeps give untrustworthy values and policies: report the
    // expiry and leave the result infeasible so callers route around it
    // (fallback router) rather than executing a half-converged strategy.
    result.deadline_expired = true;
    result.solve_seconds = watch.total_seconds();
    return;
  }
  result.reach_probability = pmax.values[mdp.start];

  if (config_.query == Query::kPmaxReachability) {
    if (result.reach_probability > 0.0) {
      // A pure argmax strategy is degenerate wherever many actions tie at
      // the same reach probability (on a healthy chip, all of them), so
      // extract lexicographically: inside the almost-sure-winning region
      // follow the Rmin strategy (fewest expected cycles among the
      // Pmax-optimal choices); elsewhere fall back to the Pmax argmax.
      MEDA_OBS_SPAN(extract_span, "synth", "extract");
      result.strategy = extract_strategy(mdp, pmax);
      for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
        if (rmin.chosen[s] >= 0) {
          result.strategy.set(
              mdp.droplets[s],
              mdp.choices[s][static_cast<std::size_t>(rmin.chosen[s])]
                  .action);
        }
      }
      result.expected_cycles = rmin.values[mdp.start];
      result.feasible = !result.strategy.empty() || mdp.is_goal[mdp.start];
    }
    result.solve_seconds = watch.total_seconds();
    return;
  }

  result.solve_seconds = watch.total_seconds();
  result.expected_cycles = rmin.values[mdp.start];

  MEDA_OBS_SPAN(extract_span, "synth", "extract");
  if (std::isfinite(result.expected_cycles)) {
    result.strategy = extract_strategy(mdp, rmin);
    result.feasible = !result.strategy.empty() || mdp.is_goal[mdp.start];
  } else if (config_.pmax_fallback && result.reach_probability > 0.0) {
    // PRISM semantics give (π, k) = (∅, ∞) here; for runtime robustness we
    // optionally fall back to the best-effort Pmax strategy.
    result.strategy = extract_strategy(mdp, pmax);
    result.feasible = !result.strategy.empty() || mdp.is_goal[mdp.start];
  }
}

}  // namespace meda::core
