#include "core/synthesizer.hpp"

#include <cmath>
#include <utility>

#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

/// Extracts the strategy recorded by a solver run. @p action_of maps a
/// (state, local choice index) pair to its Action — the RoutingMdp path
/// reads it off the explicit choices, the compiled path off the geometry
/// side table.
template <typename ActionOf>
Strategy extract_strategy(const std::vector<Rect>& droplets,
                          const Solution& sol, ActionOf&& action_of) {
  Strategy strategy;
  for (std::size_t s = 0; s < droplets.size(); ++s) {
    const int c = sol.chosen[s];
    if (c < 0) continue;
    strategy.set(droplets[s], action_of(s, c));
  }
  return strategy;
}

/// Strategy extraction and value read-out shared by the cold and warm solve
/// paths: fills strategy/expected_cycles/reach_probability/feasible from a
/// non-deadline-expired combined solution.
template <typename ActionOf>
void extract_result(const SynthesisConfig& config,
                    const ReachAvoidSolution& sol,
                    const std::vector<Rect>& droplets, std::uint32_t start,
                    bool start_is_goal, ActionOf&& action_of,
                    SynthesisResult& result) {
  const Solution& pmax = sol.pmax;
  const Solution& rmin = sol.rmin;
  result.reach_probability = pmax.values[start];

  if (config.query == Query::kPmaxReachability) {
    if (result.reach_probability > 0.0) {
      // A pure argmax strategy is degenerate wherever many actions tie at
      // the same reach probability (on a healthy chip, all of them), so
      // extract lexicographically: inside the almost-sure-winning region
      // follow the Rmin strategy (fewest expected cycles among the
      // Pmax-optimal choices); elsewhere fall back to the Pmax argmax.
      MEDA_OBS_SPAN(extract_span, "synth", "extract");
      result.strategy = extract_strategy(droplets, pmax, action_of);
      for (std::size_t s = 0; s < droplets.size(); ++s) {
        if (rmin.chosen[s] >= 0)
          result.strategy.set(droplets[s], action_of(s, rmin.chosen[s]));
      }
      result.expected_cycles = rmin.values[start];
      result.feasible = !result.strategy.empty() || start_is_goal;
    }
    return;
  }

  result.expected_cycles = rmin.values[start];
  MEDA_OBS_SPAN(extract_span, "synth", "extract");
  if (std::isfinite(result.expected_cycles)) {
    result.strategy = extract_strategy(droplets, rmin, action_of);
    result.feasible = !result.strategy.empty() || start_is_goal;
  } else if (config.pmax_fallback && result.reach_probability > 0.0) {
    // PRISM semantics give (π, k) = (∅, ∞) here; for runtime robustness we
    // optionally fall back to the best-effort Pmax strategy.
    result.strategy = extract_strategy(droplets, pmax, action_of);
    result.feasible = !result.strategy.empty() || start_is_goal;
  }
}

void record_model_metrics(const ModelStats& stats) {
  MEDA_OBS_COUNT("synth.calls", 1);
  MEDA_OBS_OBSERVE("synth.mdp_states", static_cast<double>(stats.states),
                   obs::kStateCountBuckets);
  MEDA_OBS_OBSERVE("synth.mdp_transitions",
                   static_cast<double>(stats.transitions),
                   obs::kStateCountBuckets);
}

/// Shared metrics/span tail of every synthesis entry point; the caller has
/// already set total_seconds.
template <typename Span>
void record_synthesis(Span& span, const SynthesisResult& result) {
  record_model_metrics(result.stats);
  MEDA_OBS_OBSERVE("synth.total_seconds", result.total_seconds,
                   obs::kSecondsBuckets);
  if (!result.feasible) MEDA_OBS_COUNT("synth.infeasible", 1);
  if (result.deadline_expired) MEDA_OBS_COUNT("synth.deadline_expired", 1);
  span.arg("states", static_cast<std::int64_t>(result.stats.states));
  span.arg("feasible", static_cast<std::int64_t>(result.feasible ? 1 : 0));
  span.arg("deadline_expired",
           static_cast<std::int64_t>(result.deadline_expired ? 1 : 0));
  span.arg("reach_probability", result.reach_probability);
}

/// A fresh deadline token per synthesize call: each synthesis gets the full
/// budget, and an expired token from one job can never starve the next. The
/// sweep budget wins over the wall-clock budget because it is deterministic.
/// An *active* external token overrides the per-call arming — callers pass
/// one to pool the budget across several solves (replicated MOs share one
/// token per cycle instead of multiplying the budget N×).
SolveConfig armed_solver(const SynthesisConfig& config,
                         const util::Deadline& external) {
  SolveConfig solver = config.solver;
  if (external.active())
    solver.deadline = external;
  else if (config.deadline_sweeps > 0)
    solver.deadline = util::Deadline::after_checks(config.deadline_sweeps);
  else if (config.deadline_seconds > 0.0)
    solver.deadline = util::Deadline::after_seconds(config.deadline_seconds);
  return solver;
}

}  // namespace

std::vector<Vec2i> health_delta_cells(const IntMatrix& before,
                                      const IntMatrix& after) {
  MEDA_REQUIRE(before.width() == after.width() &&
                   before.height() == after.height(),
               "health matrices differ in shape");
  std::vector<Vec2i> cells;
  for (int y = 0; y < after.height(); ++y)
    for (int x = 0; x < after.width(); ++x)
      if (before(x, y) != after(x, y)) cells.push_back({x, y});
  return cells;
}

Synthesizer::Synthesizer(Rect chip_bounds, SynthesisConfig config)
    : chip_bounds_(chip_bounds), config_(config) {
  MEDA_REQUIRE(chip_bounds.valid(), "invalid chip bounds");
}

SynthesisResult Synthesizer::synthesize(const assay::RoutingJob& rj,
                                        const IntMatrix& health,
                                        int health_bits,
                                        const util::Deadline& deadline) const {
  MEDA_REQUIRE(health.width() == chip_bounds_.width() &&
                   health.height() == chip_bounds_.height(),
               "health matrix must be chip-sized");
  return synthesize_with_force(
      rj, force_from_health(health, health_bits, config_.estimator), deadline);
}

SynthesisResult Synthesizer::synthesize_with_force(
    const assay::RoutingJob& rj, const DoubleMatrix& force,
    const util::Deadline& deadline) const {
  SynthesisResult result;
  MEDA_OBS_SPAN(span, "synth", "synthesize");
  obs::Stopwatch watch;

  const SolveConfig solver = armed_solver(config_, deadline);

  {
    MEDA_OBS_SPAN(build_span, "synth", "mdp_build");
    const RoutingMdp mdp =
        build_routing_mdp(rj, force, chip_bounds_, config_.rules,
                          config_.wear_penalty_lambda);
    result.stats = mdp.stats();
    build_span.arg("states", static_cast<std::int64_t>(result.stats.states));
    build_span.arg("transitions",
                   static_cast<std::int64_t>(result.stats.transitions));
    build_span.arg("choices",
                   static_cast<std::int64_t>(result.stats.choices));
    result.construction_seconds = watch.lap_seconds();

    solve_and_extract(mdp, solver, result);
  }

  result.total_seconds = watch.total_seconds();
  record_synthesis(span, result);
  return result;
}

SynthesisResult Synthesizer::resynthesize(const assay::RoutingJob& rj,
                                          const IntMatrix& health,
                                          int health_bits,
                                          ResynthesisContext& ctx,
                                          const util::Deadline& deadline) const {
  if (!config_.incremental)
    return synthesize(rj, health, health_bits, deadline);
  MEDA_REQUIRE(health.width() == chip_bounds_.width() &&
                   health.height() == chip_bounds_.height(),
               "health matrix must be chip-sized");

  // Warm eligibility: the retained model must cover the same (goal, hazard)
  // anchor, and the (possibly re-anchored) start must be a state it already
  // explored. A different goal or hazard changes the reachable state space
  // outright; an unexplored start means the droplet drifted somewhere the
  // prior model considered unreachable.
  std::uint32_t start_state = 0;
  bool eligible = ctx.valid && rj.goal == ctx.anchor.goal &&
                  rj.hazard == ctx.anchor.hazard;
  if (eligible) {
    const auto it = ctx.geometry.state_index.find(rj.start);
    if (it == ctx.geometry.state_index.end())
      eligible = false;
    else
      start_state = it->second;
  }

  const DoubleMatrix force =
      force_from_health(health, health_bits, config_.estimator);

  SynthesisResult result;
  MEDA_OBS_SPAN(span, "synth", "resynthesize");
  obs::Stopwatch watch;

  if (eligible) {
    const std::vector<Vec2i> delta = health_delta_cells(ctx.health, health);
    const MdpPatch patch = patch_compiled_mdp(
        ctx.compiled, ctx.geometry, force, ctx.anchor.hazard, chip_bounds_,
        delta, config_.wear_penalty_lambda);
    if (patch.patched) {
      ctx.compiled.start = start_state;
      result.stats = ctx.stats;
      result.construction_seconds = watch.lap_seconds();
      result.warm = true;
      MEDA_OBS_COUNT("synth.warm.patched", 1);
      MEDA_OBS_OBSERVE_LOG2("synth.warm.delta_cells",
                            static_cast<double>(delta.size()));
      ReachAvoidSolution sol = solve_reach_avoid_warm(
          ctx.compiled, ctx.solution, patch.dirty_states,
          armed_solver(config_, deadline));
      result.solve_seconds = watch.lap_seconds();
      if (sol.pmax.deadline_expired || sol.rmin.deadline_expired) {
        // The model was already patched but the solve did not finish: ctx
        // no longer pairs a converged solution with the model it solved,
        // so the next synthesis of this lineage must be cold.
        ctx.valid = false;
        result.deadline_expired = true;
      } else {
        extract_result(
            config_, sol, ctx.geometry.droplets, ctx.compiled.start,
            ctx.compiled.is_goal[ctx.compiled.start] != 0,
            [&ctx](std::size_t s, int c) {
              return ctx.geometry.choice_action[ctx.compiled.choice_offset[s] +
                                                static_cast<std::uint32_t>(c)];
            },
            result);
        ctx.anchor = rj;
        ctx.health = health;
        ctx.solution = std::move(sol);
      }
      result.total_seconds = watch.total_seconds();
      record_synthesis(span, result);
      span.arg("warm", static_cast<std::int64_t>(1));
      return result;
    }
    // A cell died or revived inside the model's footprint: the transition
    // topology changed (quarantine/parole) and the retained arrays are
    // partially rewritten — rebuild from scratch below.
    MEDA_OBS_COUNT("synth.warm.topology_cold", 1);
    ctx.valid = false;
  }

  // Cold rebuild, re-priming ctx so the next delta can go warm.
  {
    MEDA_OBS_SPAN(build_span, "synth", "mdp_build");
    const RoutingMdp mdp =
        build_routing_mdp(rj, force, chip_bounds_, config_.rules,
                          config_.wear_penalty_lambda);
    result.stats = mdp.stats();
    build_span.arg("states", static_cast<std::int64_t>(result.stats.states));
    build_span.arg("transitions",
                   static_cast<std::int64_t>(result.stats.transitions));
    build_span.arg("choices",
                   static_cast<std::int64_t>(result.stats.choices));
    ctx.compiled = compile_mdp(mdp);
    ctx.geometry = compile_geometry(mdp);
  }
  result.construction_seconds = watch.lap_seconds();
  ReachAvoidSolution sol =
      solve_reach_avoid(ctx.compiled, armed_solver(config_, deadline));
  result.solve_seconds = watch.lap_seconds();
  if (sol.pmax.deadline_expired || sol.rmin.deadline_expired) {
    ctx.valid = false;
    result.deadline_expired = true;
  } else {
    extract_result(
        config_, sol, ctx.geometry.droplets, ctx.compiled.start,
        ctx.compiled.is_goal[ctx.compiled.start] != 0,
        [&ctx](std::size_t s, int c) {
          return ctx.geometry.choice_action[ctx.compiled.choice_offset[s] +
                                            static_cast<std::uint32_t>(c)];
        },
        result);
    ctx.valid = true;
    ctx.anchor = rj;
    ctx.health = health;
    ctx.solution = std::move(sol);
    ctx.stats = result.stats;
  }
  result.total_seconds = watch.total_seconds();
  record_synthesis(span, result);
  span.arg("warm", static_cast<std::int64_t>(0));
  return result;
}

void Synthesizer::solve_and_extract(const RoutingMdp& mdp,
                                    const SolveConfig& solver,
                                    SynthesisResult& result) const {
  obs::Stopwatch watch;
  // Compile once and answer both queries from the shared model: the pmax
  // pass doubles as rmin's winning-region computation, so every synthesis
  // runs exactly one pmax and one rmin (the legacy path ran pmax twice).
  const ReachAvoidSolution sol = solve_reach_avoid(mdp, solver);
  result.solve_seconds = watch.total_seconds();
  if (sol.pmax.deadline_expired || sol.rmin.deadline_expired) {
    // Partial sweeps give untrustworthy values and policies: report the
    // expiry and leave the result infeasible so callers route around it
    // (fallback router) rather than executing a half-converged strategy.
    result.deadline_expired = true;
    return;
  }
  extract_result(
      config_, sol, mdp.droplets, mdp.start, mdp.is_goal[mdp.start],
      [&mdp](std::size_t s, int c) {
        return mdp.choices[s][static_cast<std::size_t>(c)].action;
      },
      result);
}

}  // namespace meda::core
