#include "core/prism_export.hpp"

#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace meda::core {

void write_prism_states(const RoutingMdp& mdp, std::ostream& os) {
  os << "(xa,ya,xb,yb)\n";
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    const Rect& d = mdp.droplets[s];
    os << s << ":(" << d.xa << ',' << d.ya << ',' << d.xb << ',' << d.yb
       << ")\n";
  }
  // The hazard sink has no droplet; encode it with the canonical
  // out-of-band tuple.
  os << mdp.hazard_sink() << ":(-1,-1,-1,-1)\n";
}

void write_prism_transitions(const RoutingMdp& mdp, std::ostream& os) {
  const ModelStats stats = mdp.stats();
  // Absorbing states (goal states and the sink) need explicit self-loops in
  // the PRISM explicit format — every state must have at least one choice.
  std::size_t absorbing = 1;  // the sink
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s)
    if (mdp.choices[s].empty()) ++absorbing;
  os << stats.states << ' ' << (stats.choices + absorbing) << ' '
     << (stats.transitions + absorbing) << '\n';
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (mdp.choices[s].empty()) {
      os << s << " 0 " << s << " 1 done\n";
      continue;
    }
    for (std::size_t c = 0; c < mdp.choices[s].size(); ++c) {
      const Choice& choice = mdp.choices[s][c];
      for (const Transition& t : choice.transitions) {
        os << s << ' ' << c << ' ' << t.target << ' ' << t.probability << ' '
           << to_string(choice.action) << '\n';
      }
    }
  }
  os << mdp.hazard_sink() << " 0 " << mdp.hazard_sink() << " 1 hazard\n";
}

void write_prism_labels(const RoutingMdp& mdp, std::ostream& os) {
  os << "0=\"init\" 1=\"deadlock\" 2=\"goal\" 3=\"hazard\"\n";
  os << mdp.start << ": 0";
  if (mdp.is_goal[mdp.start]) os << " 2";
  os << '\n';
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (s == mdp.start) continue;
    if (mdp.is_goal[s]) os << s << ": 2\n";
  }
  os << mdp.hazard_sink() << ": 3\n";
}

void write_prism_properties(std::ostream& os) {
  os << "// phi_p — maximum probability of reaching the goal while never\n"
        "// entering the hazard sink (Section VI-C)\n"
        "Pmax=? [ !\"hazard\" U \"goal\" ];\n"
        "// phi_r — minimum expected cycles to the goal (PRISM reward\n"
        "// semantics: infinite when the goal is not a.s. reachable)\n"
        "Rmin=? [ F \"goal\" ];\n";
}

void export_prism_model(const RoutingMdp& mdp, const std::string& basename) {
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
    return out;
  };
  {
    std::ofstream out = open(basename + ".sta");
    write_prism_states(mdp, out);
  }
  {
    std::ofstream out = open(basename + ".tra");
    write_prism_transitions(mdp, out);
  }
  {
    std::ofstream out = open(basename + ".lab");
    write_prism_labels(mdp, out);
  }
  {
    std::ofstream out = open(basename + ".props");
    write_prism_properties(out);
  }
}

}  // namespace meda::core
