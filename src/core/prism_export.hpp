#pragma once

#include <iosfwd>
#include <string>

#include "core/mdp.hpp"

/// @file prism_export.hpp
/// Export of routing-job MDPs in PRISM's explicit-state input format, so a
/// model built by this library can be cross-validated against the actual
/// PRISM / PRISM-games model checker the paper used:
///
///   prism -importtrans model.tra -importstates model.sta
///         -importlabels model.lab -mdp ...     (one command line)
///
/// Files follow the formats documented at
/// prismmodelchecker.org/manual/Appendices/ExplicitModelFiles:
///   .sta — "(x_a,y_a,x_b,y_b)" per state
///   .tra — "states choices transitions" header, then
///           "<state> <choice> <target> <prob> <action>" rows
///   .lab — label declarations ("init", "goal", "hazard") and memberships

namespace meda::core {

/// Writes the .sta states file.
void write_prism_states(const RoutingMdp& mdp, std::ostream& os);

/// Writes the .tra transitions file (MDP flavour, with action names).
void write_prism_transitions(const RoutingMdp& mdp, std::ostream& os);

/// Writes the .lab labels file marking init, goal and hazard states.
void write_prism_labels(const RoutingMdp& mdp, std::ostream& os);

/// Writes the .props property file with the paper's two synthesis queries
/// (φ_p and φ_r of Section VI-C) phrased over the exported labels:
///   Pmax=? [ !"hazard" U "goal" ]
///   Rmin=? [ F "goal" ]
/// (□¬hazard ∧ ◇goal is the until form over an absorbing hazard sink; the
/// reward "cycles" charges 1 per non-absorbing choice, which the .tra
/// export encodes implicitly — PRISM's default transition reward of 1 per
/// step matches because absorbing states self-loop with the 'done'/'hazard'
/// action names.)
void write_prism_properties(std::ostream& os);

/// Convenience: writes `<basename>.sta`, `<basename>.tra`, `<basename>.lab`
/// and `<basename>.props`. Throws on I/O failure.
void export_prism_model(const RoutingMdp& mdp, const std::string& basename);

}  // namespace meda::core
