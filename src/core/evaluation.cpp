#include "core/evaluation.hpp"

#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {

EvaluationResult evaluate_strategy(const Strategy& strategy,
                                   const assay::RoutingJob& rj,
                                   const DoubleMatrix& force,
                                   const Rect& chip,
                                   const EvaluationConfig& config, Rng& rng) {
  MEDA_REQUIRE(config.episodes > 0, "need at least one episode");
  MEDA_REQUIRE(rj.start.valid() && rj.hazard.contains(rj.start),
               "start must lie within the hazard bounds");
  EvaluationResult result;
  result.episodes = config.episodes;
  std::uint64_t success_cycle_sum = 0;

  for (int episode = 0; episode < config.episodes; ++episode) {
    Rect droplet = rj.start;
    bool resolved = false;
    for (std::uint64_t cycle = 0; cycle < config.max_cycles; ++cycle) {
      if (rj.goal.contains(droplet)) {
        ++result.successes;
        success_cycle_sum += cycle;
        resolved = true;
        break;
      }
      const auto action = strategy.action(droplet);
      if (!action) {
        ++result.strategy_gaps;
        resolved = true;
        break;
      }
      MEDA_REQUIRE(action_enabled(*action, droplet, config.rules, chip),
                   "strategy prescribes a disabled action");
      const auto outcomes = action_outcomes(droplet, *action, force);
      std::vector<double> weights(outcomes.size());
      for (std::size_t i = 0; i < outcomes.size(); ++i)
        weights[i] = outcomes[i].probability;
      droplet = outcomes[rng.categorical(weights)].droplet;
      if (!rj.hazard.contains(droplet)) {
        ++result.hazard_violations;
        resolved = true;
        break;
      }
    }
    if (!resolved) ++result.timeouts;
  }

  result.success_rate =
      static_cast<double>(result.successes) / result.episodes;
  if (result.successes > 0)
    result.mean_cycles_on_success =
        static_cast<double>(success_cycle_sum) / result.successes;
  return result;
}

}  // namespace meda::core
