#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "util/matrix.hpp"

/// @file biochip_io.hpp
/// The controller's view of a MEDA biochip (the cyber-physical boundary of
/// Fig. 13/14). The scheduler observes droplet locations (capacitive droplet
/// sensing) and the b-bit health matrix (the proposed dual-DFF sensor), and
/// commands per-droplet microfluidic actions; the chip — real hardware or
/// the simulator of Section VII — resolves the probabilistic outcomes.

namespace meda::core {

/// Opaque droplet handle issued by the chip.
using DropletId = int;

/// One per-droplet command for an operational cycle.
struct Command {
  DropletId droplet = -1;
  /// Action to actuate; nullopt holds the droplet in place (its current
  /// pattern stays actuated — free-roaming is not allowed).
  std::optional<Action> action;
  /// Droplet this one is allowed to touch this cycle (mix partner); the chip
  /// blocks any other contact between distinct droplets.
  DropletId merge_partner = -1;
};

/// Abstract MEDA biochip as seen by the routing controller.
class BiochipIo {
 public:
  virtual ~BiochipIo() = default;

  /// MC-array extent as a rectangle (0, 0, W−1, H−1).
  virtual Rect bounds() const = 0;

  /// Health-sensor resolution b.
  virtual int health_bits() const = 0;

  /// Scans out the current b-bit health matrix H (one operational-cycle
  /// sensing result; does not consume a cycle — sensing is part of every
  /// cycle on MEDA).
  virtual IntMatrix sense_health() const = 0;

  /// Current droplet location from droplet sensing.
  virtual Rect droplet_position(DropletId id) const = 0;

  /// True if @p at can hold a droplet right now (on-chip and at least one
  /// free cell away from every on-chip droplet).
  virtual bool location_clear(const Rect& at) const = 0;

  /// Dispenses a new droplet occupying @p at (must touch a chip edge and be
  /// clear per location_clear).
  virtual DropletId dispense(const Rect& at) = 0;

  /// Moves a droplet off the chip (output/discard through an edge).
  virtual void discard(DropletId id) = 0;

  /// Merges two adjacent droplets into one occupying @p merged.
  virtual DropletId merge(DropletId a, DropletId b, const Rect& merged) = 0;

  /// True if @p id could split into @p part0 / @p part1 right now: both
  /// parts on-chip, disjoint, and clear of every other droplet.
  virtual bool split_clear(DropletId id, const Rect& part0,
                           const Rect& part1) const = 0;

  /// Splits a droplet into two parts occupying @p part0 and @p part1
  /// (requires split_clear).
  virtual std::pair<DropletId, DropletId> split(DropletId id,
                                                const Rect& part0,
                                                const Rect& part1) = 0;

  /// Executes one operational cycle: shifts in the actuation pattern implied
  /// by @p commands (commanded droplets actuate their action's target
  /// pattern, all other droplets are held), actuates, senses. Outcomes are
  /// resolved by the chip.
  virtual void step(const std::vector<Command>& commands) = 0;

  /// Number of operational cycles executed so far.
  virtual std::uint64_t cycle() const = 0;
};

}  // namespace meda::core
