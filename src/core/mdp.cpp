#include "core/mdp.hpp"

#include <deque>
#include <limits>
#include <unordered_map>

#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {

ModelStats RoutingMdp::stats() const {
  ModelStats s;
  s.states = state_count();
  for (const auto& state_choices : choices) {
    s.choices += state_choices.size();
    for (const Choice& c : state_choices) s.transitions += c.transitions.size();
  }
  return s;
}

namespace {

/// The goal label of Section VI-C: the droplet lies inside δ_g.
bool inside_goal(const Rect& droplet, const Rect& goal) {
  return goal.contains(droplet);
}

/// Placeholder for the hazard sink while the state count is still growing;
/// remapped to the final sink index after exploration.
constexpr std::uint32_t kHazardSentinel =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

RoutingMdp build_routing_mdp(const assay::RoutingJob& rj,
                             const DoubleMatrix& force, const Rect& chip,
                             const ActionRules& rules,
                             double wear_penalty_lambda) {
  MEDA_REQUIRE(wear_penalty_lambda >= 0.0,
               "wear penalty must be non-negative");
  MEDA_REQUIRE(rj.start.valid(), "routing job start must be a valid droplet");
  MEDA_REQUIRE(rj.goal.valid() && rj.hazard.valid(),
               "routing job goal/hazard must be valid");
  MEDA_REQUIRE(chip.contains(rj.start), "start droplet must be on the chip");
  MEDA_REQUIRE(rj.hazard.contains(rj.start),
               "start droplet must lie within the hazard bounds");
  MEDA_REQUIRE(force.width() == chip.width() &&
                   force.height() == chip.height(),
               "force matrix must be chip-sized");

  RoutingMdp mdp;
  std::unordered_map<Rect, std::uint32_t> index;

  auto intern = [&](const Rect& droplet) -> std::uint32_t {
    auto [it, inserted] = index.emplace(
        droplet, static_cast<std::uint32_t>(mdp.droplets.size()));
    if (inserted) {
      mdp.droplets.push_back(droplet);
      mdp.is_goal.push_back(inside_goal(droplet, rj.goal));
      mdp.choices.emplace_back();
    }
    return it->second;
  };

  mdp.start = intern(rj.start);
  std::deque<std::uint32_t> worklist = {mdp.start};
  std::vector<bool> expanded = {false};

  while (!worklist.empty()) {
    const std::uint32_t s = worklist.front();
    worklist.pop_front();
    if (expanded[s]) continue;
    expanded[s] = true;
    if (mdp.is_goal[s]) continue;  // goal states are absorbing

    const Rect droplet = mdp.droplets[s];
    for (Action a : kAllActions) {
      if (!action_enabled(a, droplet, rules, chip)) continue;
      Choice choice;
      choice.action = a;
      if (wear_penalty_lambda > 0.0) {
        // Wear-aware reward: penalize actuating already-degraded cells.
        // The actuated cells are the move's target pattern a(δ).
        const Rect target = apply(a, droplet).intersection_with(chip);
        choice.cost =
            1.0 + wear_penalty_lambda *
                      (1.0 - mean_frontier_force(force, target));
      }
      for (const Outcome& o : action_outcomes(droplet, a, force)) {
        std::uint32_t target;
        if (!rj.hazard.contains(o.droplet)) {
          target = kHazardSentinel;  // leaving δ_h is a hazard violation
        } else {
          const std::size_t before = mdp.droplets.size();
          target = intern(o.droplet);
          if (mdp.droplets.size() > before) {
            worklist.push_back(target);
            expanded.push_back(false);
          }
        }
        choice.transitions.push_back(Transition{target, o.probability});
      }
      mdp.choices[s].push_back(std::move(choice));
    }
  }

  // Remap the sink sentinel to the final (stable) sink index.
  const std::uint32_t sink = mdp.hazard_sink();
  for (auto& state_choices : mdp.choices)
    for (Choice& c : state_choices)
      for (Transition& t : c.transitions)
        if (t.target == kHazardSentinel) t.target = sink;

  return mdp;
}

}  // namespace meda::core
