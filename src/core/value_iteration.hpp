#pragma once

#include <vector>

#include "core/mdp.hpp"

/// @file value_iteration.hpp
/// The model-checking engine standing in for PRISM-games (Section VI-C).
/// Solves the two synthesis queries of the paper on a routing MDP:
///
///   φ_p: Pmax=? [ □(¬hazard) ∧ ◇goal ]  — maximum probability of reaching a
///        goal state while never entering the hazard sink;
///   φ_r: Rmin=? [ □(¬hazard) ∧ ◇goal ]  — minimum expected number of cycles
///        (reward 1 per action) to reach goal, with PRISM reward semantics:
///        states from which goal is not almost-surely reachable get ∞.
///
/// Failed pulls self-loop, so plain value iteration converges geometrically
/// slowly; both solvers therefore eliminate per-choice self-loops
/// algebraically (a choice with stay-probability q and off-state mass rest
/// has committed value rest/(1−q), or (cost + rest)/(1−q) for rewards).

namespace meda::core {

/// Iteration controls.
struct SolveConfig {
  double tolerance = 1e-9;
  int max_iterations = 200000;
};

/// Solver output: per-state values and the optimizing choice per state.
struct Solution {
  std::vector<double> values;  ///< indexed like the MDP (incl. hazard sink)
  std::vector<int> chosen;     ///< choice index per droplet state; -1 if none
  int iterations = 0;          ///< Bellman sweeps performed
  double final_residual = 0.0; ///< max value change in the last sweep
  bool converged = false;
};

/// Maximum reach-avoid probability. Goal states have value 1, the hazard
/// sink 0; other values are the least fixed point of the Bellman maximum.
Solution solve_pmax(const RoutingMdp& mdp, const SolveConfig& config = {});

/// Minimum expected cycles to goal under the almost-sure-reachability
/// restriction. States (and choices) that cannot keep the reach probability
/// at 1 are excluded; excluded states get value +∞.
Solution solve_rmin(const RoutingMdp& mdp, const SolveConfig& config = {});

}  // namespace meda::core
