#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/compiled_mdp.hpp"
#include "core/mdp.hpp"
#include "util/deadline.hpp"

/// @file value_iteration.hpp
/// The model-checking engine standing in for PRISM-games (Section VI-C).
/// Solves the two synthesis queries of the paper on a routing MDP:
///
///   φ_p: Pmax=? [ □(¬hazard) ∧ ◇goal ]  — maximum probability of reaching a
///        goal state while never entering the hazard sink;
///   φ_r: Rmin=? [ □(¬hazard) ∧ ◇goal ]  — minimum expected number of cycles
///        (reward 1 per action) to reach goal, with PRISM reward semantics:
///        states from which goal is not almost-surely reachable get ∞.
///
/// Failed pulls self-loop, so plain value iteration converges geometrically
/// slowly; both solvers therefore eliminate per-choice self-loops
/// algebraically (a choice with stay-probability q and off-state mass rest
/// has committed value rest/(1−q), or (cost + rest)/(1−q) for rewards).
///
/// Two solver paths share this interface:
///
///  - the **compiled fast path** (the default): Gauss-Seidel sweeps over a
///    CompiledMdp's flat CSR arrays in goal-anchored order, with the
///    self-loop scale 1/(1−q) precomputed per choice (see compiled_mdp.hpp);
///  - the **legacy reference path** (`solve_*_legacy`): the original sweeps
///    over the pointer-based RoutingMdp in state-index order, kept as the
///    equivalence oracle for tests and the baseline for microbenchmarks.
///
/// Both paths break value ties identically: among choices within `kTieEps`
/// of the optimum, the lowest choice index — i.e. the lowest action index,
/// since build_routing_mdp enumerates kAllActions in order — wins. Policies
/// are therefore stable across the two paths and across sweep orders.

namespace meda::core {

/// Tie-break window shared by every solver path: a choice must beat the
/// incumbent by more than this to replace it, so exact ties (and sub-noise
/// differences) resolve to the lowest action index in pmax and rmin alike.
inline constexpr double kTieEps = 1e-15;

/// Iteration controls.
struct SolveConfig {
  double tolerance = 1e-9;
  int max_iterations = 200000;
  /// Cooperative deadline polled once per Gauss-Seidel sweep (never per
  /// state). On expiry the solver stops early with converged = false and
  /// deadline_expired = true; partial values are still returned but must
  /// not be used for strategy extraction. A default token never expires.
  util::Deadline deadline{};
  /// Telemetry tag only (does not change the solve): set by callers that
  /// seeded the solve from prior values, so warm and cold solves land in
  /// separate sweep-count histograms. The incremental re-synthesis work on
  /// the roadmap will flip this; today every solve is cold.
  bool warm_start = false;
};

/// Why a solve stopped (Solution::termination).
enum class SolveTermination {
  kConverged,   ///< residual fell below SolveConfig::tolerance
  kSweepLimit,  ///< ran out of max_iterations
  kDeadline,    ///< SolveConfig::deadline expired mid-solve
};

/// Stable lower-case label ("converged" / "sweep_limit" / "deadline"),
/// used in span args, metric names, and CSV cells.
const char* to_string(SolveTermination termination);

/// Per-sweep max-residual history kept on every Solution: the last
/// kResidualRingCapacity sweeps, chronological. Bounded so a pathological
/// 200k-sweep solve cannot bloat its Solution; 64 sweeps is an order of
/// magnitude past a typical converged solve, so the ring usually holds the
/// whole residual curve.
inline constexpr std::size_t kResidualRingCapacity = 64;

/// Solver output: per-state values and the optimizing choice per state.
struct Solution {
  std::vector<double> values;  ///< indexed like the MDP (incl. hazard sink)
  std::vector<int> chosen;     ///< choice index per droplet state; -1 if none
  int iterations = 0;          ///< Bellman sweeps performed
  double final_residual = 0.0; ///< max value change in the last sweep
  bool converged = false;
  bool deadline_expired = false;  ///< stopped by SolveConfig::deadline
  SolveTermination termination = SolveTermination::kSweepLimit;
  /// State-value updates actually performed (goal/non-winning/choiceless
  /// states a sweep skips are not counted) — the solver's real work metric,
  /// ≈ sweeps × active states.
  std::uint64_t states_touched = 0;
  /// Max residual of each of the last kResidualRingCapacity sweeps, oldest
  /// first; entry i belongs to sweep iterations - size + i + 1 (1-based).
  std::vector<double> sweep_residuals;
};

/// Both synthesis queries answered from one compiled model: the pmax pass
/// doubles as the almost-sure winning-region computation rmin needs, so a
/// combined solve runs exactly one pmax and one rmin.
struct ReachAvoidSolution {
  Solution pmax;
  Solution rmin;
};

// Compiled fast path --------------------------------------------------------

/// Maximum reach-avoid probability on the compiled form (Gauss-Seidel in
/// goal-anchored sweep order). Goal states have value 1, the hazard sink 0.
Solution solve_pmax(const CompiledMdp& mdp, const SolveConfig& config = {});

/// Both queries from one compiled model: pmax once, then rmin restricted to
/// the almost-sure winning region pmax just identified.
ReachAvoidSolution solve_reach_avoid(const CompiledMdp& mdp,
                                     const SolveConfig& config = {});

/// Compiles @p mdp once and runs the combined solve on it.
ReachAvoidSolution solve_reach_avoid(const RoutingMdp& mdp,
                                     const SolveConfig& config = {});

// RoutingMdp entry points (thin wrappers over the compiled path) ------------

/// Maximum reach-avoid probability. Compiles the model and runs the fast
/// path; values and the chosen policy match the legacy solver.
Solution solve_pmax(const RoutingMdp& mdp, const SolveConfig& config = {});

/// Minimum expected cycles to goal under the almost-sure-reachability
/// restriction; excluded states get +∞. Compiles once and reuses the pmax
/// winning region (one pmax pass total, not two).
Solution solve_rmin(const RoutingMdp& mdp, const SolveConfig& config = {});

// Legacy reference path -----------------------------------------------------

/// Original state-index-order Jacobi/Gauss-Seidel pmax on the pointer-based
/// representation. Reference implementation for equivalence tests and the
/// compiled-vs-legacy microbenchmarks.
Solution solve_pmax_legacy(const RoutingMdp& mdp,
                           const SolveConfig& config = {});

/// Original rmin (internally re-runs a full legacy pmax for the winning
/// region — the double-solve the compiled path eliminates).
Solution solve_rmin_legacy(const RoutingMdp& mdp,
                           const SolveConfig& config = {});

}  // namespace meda::core
