#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/compiled_mdp.hpp"
#include "core/mdp.hpp"
#include "util/deadline.hpp"

/// @file value_iteration.hpp
/// The model-checking engine standing in for PRISM-games (Section VI-C).
/// Solves the two synthesis queries of the paper on a routing MDP:
///
///   φ_p: Pmax=? [ □(¬hazard) ∧ ◇goal ]  — maximum probability of reaching a
///        goal state while never entering the hazard sink;
///   φ_r: Rmin=? [ □(¬hazard) ∧ ◇goal ]  — minimum expected number of cycles
///        (reward 1 per action) to reach goal, with PRISM reward semantics:
///        states from which goal is not almost-surely reachable get ∞.
///
/// Failed pulls self-loop, so plain value iteration converges geometrically
/// slowly; both solvers therefore eliminate per-choice self-loops
/// algebraically (a choice with stay-probability q and off-state mass rest
/// has committed value rest/(1−q), or (cost + rest)/(1−q) for rewards).
///
/// Two solver paths share this interface:
///
///  - the **compiled fast path** (the default): Gauss-Seidel sweeps over a
///    CompiledMdp's flat CSR arrays in goal-anchored order, with the
///    self-loop scale 1/(1−q) precomputed per choice (see compiled_mdp.hpp);
///  - the **legacy reference path** (`solve_*_legacy`): the original sweeps
///    over the pointer-based RoutingMdp in state-index order, kept as the
///    equivalence oracle for tests and the baseline for microbenchmarks.
///
/// Both paths break value ties identically: among choices within `kTieEps`
/// of the optimum, the lowest choice index — i.e. the lowest action index,
/// since build_routing_mdp enumerates kAllActions in order — wins. Policies
/// are therefore stable across the two paths and across sweep orders.

namespace meda::core {

/// Tie-break window shared by every solver path: a choice must beat the
/// incumbent by more than this to replace it, so exact ties (and sub-noise
/// differences) resolve to the lowest action index in pmax and rmin alike.
inline constexpr double kTieEps = 1e-15;

/// Iteration controls.
struct SolveConfig {
  double tolerance = 1e-9;
  int max_iterations = 200000;
  /// Cooperative deadline polled once per Gauss-Seidel sweep (never per
  /// state). On expiry the solver stops early with converged = false and
  /// deadline_expired = true; partial values are still returned but must
  /// not be used for strategy extraction. A default token never expires.
  util::Deadline deadline{};
  /// Warm/cold telemetry split: solve_reach_avoid_warm forces this on so
  /// its sweep counts land in vi.sweep_count.warm; the cold entry points
  /// leave it false. Callers never need to set it by hand.
  bool warm_start = false;
  /// Warm-solve tuning (solve_reach_avoid_warm only). When the seeded dirty
  /// set exceeds this fraction of the droplet states, the prioritized
  /// worklist phase is skipped — the delta is too wide for locality to pay
  /// and plain goal-anchored sweeps converge faster.
  double warm_dirty_fraction = 0.25;
  /// Worklist pop budget, in units of full sweeps (pops ≤ budget × droplet
  /// states). Exceeding it abandons the worklist for plain sweeps, which
  /// bounds the warm path at a small multiple of a cold solve even on
  /// adversarial deltas. 0 disables the worklist phase entirely (the solve
  /// is then seeded-but-swept).
  int warm_pop_budget_sweeps = 8;
};

/// Why a solve stopped (Solution::termination).
enum class SolveTermination {
  kConverged,   ///< residual fell below SolveConfig::tolerance
  kSweepLimit,  ///< ran out of max_iterations
  kDeadline,    ///< SolveConfig::deadline expired mid-solve
};

/// Stable lower-case label ("converged" / "sweep_limit" / "deadline"),
/// used in span args, metric names, and CSV cells.
const char* to_string(SolveTermination termination);

/// Per-sweep max-residual history kept on every Solution: the last
/// kResidualRingCapacity sweeps, chronological. Bounded so a pathological
/// 200k-sweep solve cannot bloat its Solution; 64 sweeps is an order of
/// magnitude past a typical converged solve, so the ring usually holds the
/// whole residual curve.
inline constexpr std::size_t kResidualRingCapacity = 64;

/// Solver output: per-state values and the optimizing choice per state.
struct Solution {
  std::vector<double> values;  ///< indexed like the MDP (incl. hazard sink)
  std::vector<int> chosen;     ///< choice index per droplet state; -1 if none
  int iterations = 0;          ///< Bellman sweeps performed
  double final_residual = 0.0; ///< max value change in the last sweep
  bool converged = false;
  bool deadline_expired = false;  ///< stopped by SolveConfig::deadline
  SolveTermination termination = SolveTermination::kSweepLimit;
  /// State-value updates actually performed (goal/non-winning/choiceless
  /// states a sweep skips are not counted) — the solver's real work metric,
  /// ≈ sweeps × active states.
  std::uint64_t states_touched = 0;
  /// Max residual of each of the last kResidualRingCapacity sweeps, oldest
  /// first; entry i belongs to sweep iterations - size + i + 1 (1-based).
  std::vector<double> sweep_residuals;
  // Warm-solve telemetry (all zero/false on cold solves).
  bool warm_started = false;   ///< produced by solve_reach_avoid_warm
  bool warm_fell_back = false; ///< dirty frontier forced plain full sweeps
  std::uint64_t warm_pops = 0; ///< prioritized-worklist state updates
  std::uint32_t warm_seeds = 0;  ///< states seeded into the worklist
};

/// Both synthesis queries answered from one compiled model: the pmax pass
/// doubles as the almost-sure winning-region computation rmin needs, so a
/// combined solve runs exactly one pmax and one rmin.
struct ReachAvoidSolution {
  Solution pmax;
  Solution rmin;
};

// Compiled fast path --------------------------------------------------------

/// Maximum reach-avoid probability on the compiled form (Gauss-Seidel in
/// goal-anchored sweep order). Goal states have value 1, the hazard sink 0.
Solution solve_pmax(const CompiledMdp& mdp, const SolveConfig& config = {});

/// Both queries from one compiled model: pmax once, then rmin restricted to
/// the almost-sure winning region pmax just identified.
ReachAvoidSolution solve_reach_avoid(const CompiledMdp& mdp,
                                     const SolveConfig& config = {});

/// Compiles @p mdp once and runs the combined solve on it.
ReachAvoidSolution solve_reach_avoid(const RoutingMdp& mdp,
                                     const SolveConfig& config = {});

/// Incremental combined solve: seeds both value vectors from @p prior — a
/// converged solution of the same compiled model *before* an in-place
/// health patch (patch_compiled_mdp) — and propagates the patch's @p dirty
/// states through a residual-prioritized worklist (bucketed by residual
/// decade, FIFO within a bucket, predecessors via CompiledMdp::pred_state;
/// deterministic for a given model + delta). Every warm solve finishes with
/// plain verification sweeps to the cold convergence criterion, so results
/// are equivalent to solve_reach_avoid on the patched model: identical
/// strategy tie-breaks, values within solver tolerance.
///
/// Soundness: pmax re-seeds from below (prior almost-sure-winning states
/// keep their ≈1 values — winning is a graph property, invariant under the
/// probability-only deltas a successful patch guarantees — while
/// quantitative (0,1) states restart at 0), because Gauss-Seidel from above
/// can lock onto a spurious fixed point on no-leak cycles. rmin has a
/// unique fixed point over the winning region (every action costs ≥ 1), so
/// any finite seed converges.
///
/// Deadline-expired warm results are as partial as cold ones: discard them
/// and keep the prior. Sets SolveConfig::warm_start truthfully.
ReachAvoidSolution solve_reach_avoid_warm(
    const CompiledMdp& mdp, const ReachAvoidSolution& prior,
    const std::vector<std::uint32_t>& dirty, const SolveConfig& config = {});

// RoutingMdp entry points (thin wrappers over the compiled path) ------------

/// Maximum reach-avoid probability. Compiles the model and runs the fast
/// path; values and the chosen policy match the legacy solver.
Solution solve_pmax(const RoutingMdp& mdp, const SolveConfig& config = {});

/// Minimum expected cycles to goal under the almost-sure-reachability
/// restriction; excluded states get +∞. Compiles once and reuses the pmax
/// winning region (one pmax pass total, not two).
Solution solve_rmin(const RoutingMdp& mdp, const SolveConfig& config = {});

// Legacy reference path -----------------------------------------------------

/// Original state-index-order Jacobi/Gauss-Seidel pmax on the pointer-based
/// representation. Reference implementation for equivalence tests and the
/// compiled-vs-legacy microbenchmarks.
Solution solve_pmax_legacy(const RoutingMdp& mdp,
                           const SolveConfig& config = {});

/// Original rmin (internally re-runs a full legacy pmax for the winning
/// region — the double-solve the compiled path eliminates).
Solution solve_rmin_legacy(const RoutingMdp& mdp,
                           const SolveConfig& config = {});

}  // namespace meda::core
