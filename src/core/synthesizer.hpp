#pragma once

#include <limits>
#include <vector>

#include "assay/helper.hpp"
#include "chip/degradation.hpp"
#include "core/compiled_mdp.hpp"
#include "core/mdp.hpp"
#include "core/strategy.hpp"
#include "core/value_iteration.hpp"
#include "geometry/point.hpp"
#include "model/guards.hpp"
#include "util/matrix.hpp"

/// @file synthesizer.hpp
/// Algorithm 2 — SYNTH(RJ, H): builds the routing-job MDP from the current
/// health matrix and synthesizes an optimal routing strategy with the
/// model-checking engine (our PRISM-games substitute).

namespace meda::core {

/// Which synthesis query drives strategy extraction.
enum class Query : unsigned char {
  kRminExpectedCycles,  ///< φ_r: Rmin=? [□¬hazard ∧ ◇goal] (Algorithm 2)
  kPmaxReachability,    ///< φ_p: Pmax=? [□¬hazard ∧ ◇goal]
};

/// Synthesis configuration.
struct SynthesisConfig {
  ActionRules rules{};
  Query query = Query::kRminExpectedCycles;
  HealthEstimator estimator = HealthEstimator::kScaled;
  SolveConfig solver{};
  /// When the Rmin query is infeasible (goal not almost-surely reachable)
  /// fall back to the Pmax strategy if it has positive reach probability.
  bool pmax_fallback = true;
  /// Wear-aware synthesis extension: λ ≥ 0 weighting the wear imposed on
  /// degraded cells against pure cycle count in the Rmin reward. 0 (the
  /// default) is the paper's r_k reward; positive values make routes spread
  /// wear proactively (see bench/wear_leveling).
  double wear_penalty_lambda = 0.0;
  /// Wall-clock budget per synthesize call (0 = unbounded). A fresh
  /// util::Deadline is armed per call and polled once per Gauss-Seidel
  /// sweep; on expiry the result comes back infeasible with
  /// deadline_expired set, and the scheduler degrades to the fallback
  /// router (see core/fallback_router.hpp) instead of aborting the job.
  double deadline_seconds = 0.0;
  /// Deterministic budget: total solver sweeps allowed per synthesize call
  /// (0 = unbounded). Takes precedence over deadline_seconds when both are
  /// set — it expires identically on every machine, which is what the
  /// deadline tests and reproducible campaigns need.
  std::uint64_t deadline_sweeps = 0;
  /// Incremental re-synthesis: when a ResynthesisContext holds a converged
  /// solution for the same (goal, hazard) anchor, resynthesize() patches the
  /// retained CompiledMdp in place for the sensed health delta and runs the
  /// warm-started solver instead of rebuilding from scratch. Results are
  /// equivalent to a cold synthesis (see solve_reach_avoid_warm); disabling
  /// this routes every resynthesize() through the cold path.
  bool incremental = true;
};

/// Result of one synthesis call.
struct SynthesisResult {
  Strategy strategy;  ///< empty when infeasible
  double expected_cycles =
      std::numeric_limits<double>::infinity();  ///< E[r_k] at δ_s
  double reach_probability = 0.0;               ///< Pmax at δ_s
  ModelStats stats;
  double construction_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Wall time of the whole synthesize call, measured once around it (the
  /// single source of truth for ExecutionStats::synthesis_seconds; covers
  /// construction + solve + strategy extraction, so it is not exactly the
  /// sum of the two phase fields above).
  double total_seconds = 0.0;
  bool feasible = false;  ///< a usable strategy was produced
  /// The call was cut short by the synthesis deadline. Implies !feasible;
  /// partial solver values are discarded, no strategy is extracted, and the
  /// result must not be cached in a StrategyLibrary.
  bool deadline_expired = false;
  /// Produced by the incremental path: the retained model was patched in
  /// place and solved warm instead of rebuilt. Never true for a deadline-
  /// expired or cold result.
  bool warm = false;
};

/// Cells whose sensed health level differs between two chip-sized matrices,
/// ascending row-major (y, then x) — the delta fed to patch_compiled_mdp.
std::vector<Vec2i> health_delta_cells(const IntMatrix& before,
                                      const IntMatrix& after);

/// Solver state retained between consecutive syntheses of one routing job
/// lineage (same MO and query; the start may re-anchor as the droplet
/// advances). Owned by the caller — the scheduler keeps one per active
/// route task — and handed to Synthesizer::resynthesize, which reads the
/// prior solution, patches the compiled model in place, and writes the
/// refreshed state back. `valid` is false until the first successful
/// synthesis and after any deadline expiry (a half-patched model and a
/// stale solution must not seed the next solve).
struct ResynthesisContext {
  bool valid = false;
  assay::RoutingJob anchor;   ///< job the retained model was built for
  CompiledMdp compiled;       ///< patched in place across health deltas
  CompiledGeometry geometry;  ///< side table for patching + extraction
  ReachAvoidSolution solution;  ///< converged prior (warm-start seed)
  IntMatrix health;           ///< sensed health the model currently reflects
  ModelStats stats;           ///< shape of the retained model
};

/// The routing-strategy synthesizer for a fixed chip.
class Synthesizer {
 public:
  explicit Synthesizer(Rect chip_bounds, SynthesisConfig config = {});

  const SynthesisConfig& config() const { return config_; }
  const Rect& chip_bounds() const { return chip_bounds_; }

  /// Algorithm 2: synthesize from the sensed b-bit health matrix (the
  /// controller's information). @p health must be chip-sized.
  ///
  /// @p deadline — when active, this externally owned token bounds the
  /// solve *instead of* a fresh per-call budget from the config. All solves
  /// sharing one token share one budget: the scheduler arms one per
  /// replicated MO per cycle so N redundant replicas never multiply the
  /// synthesis budget N×. An inactive (default) token restores the
  /// per-call arming of config().deadline_sweeps / deadline_seconds.
  SynthesisResult synthesize(const assay::RoutingJob& rj,
                             const IntMatrix& health, int health_bits,
                             const util::Deadline& deadline = {}) const;

  /// Synthesize from an explicit per-MC relative-force matrix. Used by the
  /// degradation-unaware baseline (full-health force) and by analyses that
  /// bypass quantization. @p deadline as in synthesize().
  SynthesisResult synthesize_with_force(
      const assay::RoutingJob& rj, const DoubleMatrix& force,
      const util::Deadline& deadline = {}) const;

  /// Incremental Algorithm 2: like synthesize, but reuses @p ctx when it
  /// holds a converged solution for the same (goal, hazard) anchor. The
  /// sensed-health delta against ctx.health is patched into the retained
  /// CompiledMdp (patch_compiled_mdp) and solved warm
  /// (solve_reach_avoid_warm); any topology change, anchor mismatch, or
  /// start outside the retained state space falls back to a cold build that
  /// re-primes ctx. Deadline expiry invalidates ctx — the model may be
  /// half-patched — so the next call is cold. With config().incremental
  /// false this is exactly synthesize() and ctx is left untouched.
  /// @p deadline as in synthesize(); expiry under a shared token
  /// invalidates ctx exactly like a per-call expiry.
  SynthesisResult resynthesize(const assay::RoutingJob& rj,
                               const IntMatrix& health, int health_bits,
                               ResynthesisContext& ctx,
                               const util::Deadline& deadline = {}) const;

 private:
  /// Runs the configured query's solver(s) on @p mdp under @p solver and
  /// fills the strategy/value/timing fields of @p result (construction
  /// fields are the caller's).
  void solve_and_extract(const RoutingMdp& mdp, const SolveConfig& solver,
                         SynthesisResult& result) const;

  Rect chip_bounds_;
  SynthesisConfig config_;
};

}  // namespace meda::core
