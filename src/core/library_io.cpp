#include "core/library_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "obs/obs.hpp"

namespace meda::core {

namespace {

/// Sanity cap on strategy rows per entry: a garbled row count must not make
/// the loader chew through (and allocate for) gigabytes of garbage. Real
/// strategies are a few hundred cells; 2^20 is orders of magnitude past any
/// chip this code models.
constexpr std::size_t kMaxStrategyRows = std::size_t{1} << 20;

void write_rect(std::ostream& os, const Rect& r) {
  os << r.xa << ' ' << r.ya << ' ' << r.xb << ' ' << r.yb;
}

Rect read_rect(std::istream& is) {
  Rect r;
  is >> r.xa >> r.ya >> r.xb >> r.yb;
  return r;
}

void write_double(std::ostream& os, double v) {
  if (std::isinf(v)) {
    os << "inf";
  } else {
    os << v;
  }
}

bool read_double_nothrow(std::istream& is, double& out) {
  std::string token;
  if (!(is >> token)) return false;
  if (token == "inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    std::size_t consumed = 0;
    out = std::stod(token, &consumed);
    return consumed == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Parses one entry body (everything after the "entry" keyword) into
/// temporaries. Returns false — storing nothing — on any truncation or
/// garbage; the caller resynchronizes.
bool parse_entry(std::istream& is, assay::RoutingJob& rj,
                 std::uint64_t& digest, SynthesisResult& result) {
  rj.start = read_rect(is);
  rj.goal = read_rect(is);
  rj.hazard = read_rect(is);
  int feasible = 0;
  std::size_t rows = 0;
  is >> digest >> feasible;
  if (!is.good()) return false;
  result.feasible = feasible != 0;
  if (!read_double_nothrow(is, result.expected_cycles)) return false;
  if (!read_double_nothrow(is, result.reach_probability)) return false;
  is >> rows;
  if (!is.good() || rows > kMaxStrategyRows) return false;
  for (std::size_t i = 0; i < rows; ++i) {
    const Rect droplet = read_rect(is);
    int action = -1;
    is >> action;
    if (is.fail() || action < 0 ||
        action >= static_cast<int>(kAllActions.size()))
      return false;
    result.strategy.set(droplet, static_cast<Action>(action));
  }
  // Torn-tail rule (cf. SlotCheckpoint): save_library terminates every
  // entry with '\n', so an entry whose last token runs straight into EOF
  // may itself be a truncated longer token (action "19" torn to "1" still
  // parses). Reject the entry whole rather than store a distorted row.
  if (is.peek() == std::char_traits<char>::eof()) return false;
  return true;
}

}  // namespace

void save_library(const StrategyLibrary& library, std::ostream& os) {
  os << "medalib 1\n";
  os.precision(17);
  for (const StrategyLibrary::EntryView& entry : library.entries()) {
    const SynthesisResult& r = *entry.result;
    // Deterministic strategy row order.
    std::vector<std::pair<Rect, Action>> rows(r.strategy.begin(),
                                              r.strategy.end());
    std::sort(rows.begin(), rows.end());
    os << "entry ";
    write_rect(os, entry.start);
    os << ' ';
    write_rect(os, entry.goal);
    os << ' ';
    write_rect(os, entry.hazard);
    os << ' ' << entry.digest << ' ' << (r.feasible ? 1 : 0) << ' ';
    write_double(os, r.expected_cycles);
    os << ' ';
    write_double(os, r.reach_probability);
    os << ' ' << rows.size() << '\n';
    for (const auto& [droplet, action] : rows) {
      write_rect(os, droplet);
      os << ' ' << static_cast<int>(action) << '\n';
    }
  }
}

LibraryLoadStats load_library(StrategyLibrary& library, std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "medalib" || version != 1)
    throw LibraryLoadError("not a version-1 medalib file");
  LibraryLoadStats stats;
  std::string keyword;
  bool have_keyword = false;
  while (have_keyword || static_cast<bool>(is >> keyword)) {
    have_keyword = false;
    if (keyword != "entry") {
      // Garbage between entries: count the run as one rejected entry and
      // resynchronize at the next "entry" keyword (coordinates are bare
      // integers, so the keyword cannot occur inside a valid entry body).
      ++stats.rejected;
      MEDA_OBS_COUNT("library.load_rejected", 1);
      while (is >> keyword)
        if (keyword == "entry") break;
      if (keyword != "entry" || !is) break;
    }
    assay::RoutingJob rj;
    std::uint64_t digest = 0;
    SynthesisResult result;
    if (parse_entry(is, rj, digest, result)) {
      library.store(rj, digest, std::move(result));
      ++stats.loaded;
      continue;
    }
    // Truncated or garbled entry: nothing was stored (the strategy lives in
    // the temporary above). Count it and resynchronize.
    ++stats.rejected;
    MEDA_OBS_COUNT("library.load_rejected", 1);
    is.clear();
    while (is >> keyword) {
      if (keyword == "entry") {
        have_keyword = true;
        break;
      }
    }
    if (!have_keyword) break;
  }
  return stats;
}

void save_library_file(const StrategyLibrary& library,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open())
    throw LibraryLoadError("cannot open " + path + " for writing");
  save_library(library, out);
}

LibraryLoadStats load_library_file(StrategyLibrary& library,
                                   const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw LibraryLoadError("cannot open " + path);
  return load_library(library, in);
}

}  // namespace meda::core
