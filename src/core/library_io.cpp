#include "core/library_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace meda::core {

namespace {

void write_rect(std::ostream& os, const Rect& r) {
  os << r.xa << ' ' << r.ya << ' ' << r.xb << ' ' << r.yb;
}

Rect read_rect(std::istream& is) {
  Rect r;
  is >> r.xa >> r.ya >> r.xb >> r.yb;
  return r;
}

void write_double(std::ostream& os, double v) {
  if (std::isinf(v)) {
    os << "inf";
  } else {
    os << v;
  }
}

double read_double(std::istream& is) {
  std::string token;
  is >> token;
  if (token == "inf") return std::numeric_limits<double>::infinity();
  try {
    return std::stod(token);
  } catch (const std::exception&) {
    throw PreconditionError("library file: bad number '" + token + "'");
  }
}

}  // namespace

void save_library(const StrategyLibrary& library, std::ostream& os) {
  os << "medalib 1\n";
  os.precision(17);
  for (const StrategyLibrary::EntryView& entry : library.entries()) {
    const SynthesisResult& r = *entry.result;
    // Deterministic strategy row order.
    std::vector<std::pair<Rect, Action>> rows(r.strategy.begin(),
                                              r.strategy.end());
    std::sort(rows.begin(), rows.end());
    os << "entry ";
    write_rect(os, entry.start);
    os << ' ';
    write_rect(os, entry.goal);
    os << ' ';
    write_rect(os, entry.hazard);
    os << ' ' << entry.digest << ' ' << (r.feasible ? 1 : 0) << ' ';
    write_double(os, r.expected_cycles);
    os << ' ';
    write_double(os, r.reach_probability);
    os << ' ' << rows.size() << '\n';
    for (const auto& [droplet, action] : rows) {
      write_rect(os, droplet);
      os << ' ' << static_cast<int>(action) << '\n';
    }
  }
}

void load_library(StrategyLibrary& library, std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  MEDA_REQUIRE(magic == "medalib" && version == 1,
               "not a version-1 medalib file");
  std::string keyword;
  while (is >> keyword) {
    MEDA_REQUIRE(keyword == "entry", "library file: expected 'entry'");
    assay::RoutingJob rj;
    rj.start = read_rect(is);
    rj.goal = read_rect(is);
    rj.hazard = read_rect(is);
    std::uint64_t digest = 0;
    int feasible = 0;
    std::size_t rows = 0;
    is >> digest >> feasible;
    SynthesisResult result;
    result.feasible = feasible != 0;
    result.expected_cycles = read_double(is);
    result.reach_probability = read_double(is);
    is >> rows;
    MEDA_REQUIRE(is.good(), "library file: truncated entry header");
    for (std::size_t i = 0; i < rows; ++i) {
      const Rect droplet = read_rect(is);
      int action = -1;
      is >> action;
      MEDA_REQUIRE(is.good() && action >= 0 &&
                       action < static_cast<int>(kAllActions.size()),
                   "library file: bad strategy row");
      result.strategy.set(droplet, static_cast<Action>(action));
    }
    library.store(rj, digest, std::move(result));
  }
}

void save_library_file(const StrategyLibrary& library,
                       const std::string& path) {
  std::ofstream out(path);
  MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  save_library(library, out);
}

void load_library_file(StrategyLibrary& library, const std::string& path) {
  std::ifstream in(path);
  MEDA_REQUIRE(in.is_open(), "cannot open " + path);
  load_library(library, in);
}

}  // namespace meda::core
