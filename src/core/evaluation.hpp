#pragma once

#include <cstdint>

#include "assay/helper.hpp"
#include "core/strategy.hpp"
#include "model/guards.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

/// @file evaluation.hpp
/// Monte-Carlo evaluation of a synthesized routing strategy against an
/// arbitrary force field. Used to
///  - cross-validate the value-iteration engine (empirical success rate and
///    mean cycles must match Pmax / Rmin when evaluated on the same field),
///  - quantify the model/reality gap: a strategy synthesized from the
///    quantized health matrix H evaluated against the true degradation D
///    (the paper's full- vs incomplete-information distinction).

namespace meda::core {

/// Monte-Carlo evaluation controls.
struct EvaluationConfig {
  int episodes = 1000;               ///< independent simulated executions
  std::uint64_t max_cycles = 10000;  ///< per-episode abort bound
  ActionRules rules{};               ///< action semantics
};

/// Aggregate outcome of the evaluation.
struct EvaluationResult {
  int episodes = 0;
  int successes = 0;          ///< reached the goal without a hazard
  int hazard_violations = 0;  ///< left the hazard bounds
  int strategy_gaps = 0;      ///< reached a state the strategy doesn't cover
  int timeouts = 0;           ///< hit max_cycles
  double success_rate = 0.0;
  double mean_cycles_on_success = 0.0;  ///< 0 when nothing succeeded
};

/// Plays @p strategy from rj.start under the Section V-B outcome model with
/// per-MC forces @p force, sampling with @p rng. Episodes end on goal entry,
/// hazard exit, a state not covered by the strategy, or max_cycles.
EvaluationResult evaluate_strategy(const Strategy& strategy,
                                   const assay::RoutingJob& rj,
                                   const DoubleMatrix& force,
                                   const Rect& chip,
                                   const EvaluationConfig& config, Rng& rng);

}  // namespace meda::core
