#pragma once

#include <vector>

#include "util/rng.hpp"

/// @file mcell.hpp
/// Circuit-level model of the proposed microelectrode cell (Section III,
/// Fig. 1(b) / Fig. 2).
///
/// The paper simulates the new MC design in HSPICE with a 350 nm foundry
/// library; we substitute an ideal-switch RC transient simulation that
/// preserves the design decision under test: a second DFF whose clock edge
/// arrives a few nanoseconds after the original DFF's turns the capacitive
/// droplet sensor into a 2-bit health sensor.
///
/// Physical picture. During sensing the bottom plate is first charged to VDD
/// and then discharged; each DFF latches whether the plate voltage is still
/// above the logic threshold at its clock edge. Charge trapped in the
/// dielectric of a degraded MC opens a leakage path, so a degraded MC
/// discharges faster ("the charging/discharging time is slightly less than
/// that of a healthy microelectrode"). With the added DFF clocked ~5 ns after
/// the original one:
///
///   healthy    — still above threshold at both edges   → code 11
///   partial    — crosses between the two edges         → DFFs disagree
///   complete   — already below threshold at both edges → code 00

namespace meda::mcell {

/// Electrical and timing parameters. Capacitances come from Table I of the
/// paper; the discharge resistances are chosen so the three health classes
/// have threshold-crossing times separated on the scale of the 5 ns skew.
struct CircuitParams {
  double vdd = 3.3;   ///< supply voltage (V)
  double vth = 1.65;  ///< DFF input logic threshold (V)

  // Table I capacitances (F).
  double c_healthy = 2.375e-15;
  double c_partial = 2.380e-15;
  double c_complete = 2.385e-15;

  // Effective discharge resistance (Ω) per health class. Trapped charge
  // shortens the effective discharge path, so degraded classes see a lower
  // resistance and discharge faster.
  double r_healthy = 21.3e6;
  double r_partial = 18.8e6;
  double r_complete = 13.3e6;

  // DFF clocking: the original DFF's rising edge and the extra skew of the
  // newly added DFF (the paper's design point is 5 ns).
  double clk_original_ns = 28.0;
  double clk_skew_ns = 5.0;

  // Transient integration controls (explicit Euler).
  double sim_dt_ns = 0.005;
  double sim_horizon_ns = 80.0;
};

/// Sensed microelectrode health class.
enum class HealthClass : unsigned char { kHealthy, kPartial, kComplete };

/// A simulated voltage trace, uniformly sampled in time.
struct Transient {
  double dt_ns = 0.0;
  std::vector<double> v;  ///< v[i] = plate voltage at t = i·dt_ns

  /// Linearly interpolated voltage at @p t_ns (clamped to the trace).
  double at(double t_ns) const;
};

/// Parallel-plate capacitance C = ε·A/d (used to validate Table I: a 50×50 µm²
/// electrode with silicone-oil permittivity 19 pF/m and a 20 µm gap gives
/// 2.375 fF).
double parallel_plate_capacitance(double area_m2, double permittivity_f_per_m,
                                  double gap_m);

/// Simulates the discharge phase V(t) of an RC node initially at VDD, by
/// explicit Euler integration of dV/dt = −V/(R·C).
Transient simulate_discharge(double r_ohm, double c_farad,
                             const CircuitParams& params);

/// First time (ns) the trace falls below @p vth; returns the horizon if it
/// never does.
double threshold_crossing_ns(const Transient& trace, double vth);

/// Samples the two DFFs against @p trace: returns the 2-bit code with the
/// original DFF in bit 1 and the added (delayed) DFF in bit 0. A bit is 1
/// while the plate is still above threshold at the corresponding clock edge.
int sense_code(const Transient& trace, const CircuitParams& params);

/// Runs the full sensing pipeline for one health class.
int sense_code(HealthClass cls, const CircuitParams& params);

/// Maps a 2-bit sensor code to the health class it indicates. Codes where the
/// DFFs disagree indicate partial degradation.
HealthClass classify(int code);

/// The window of DFF clock skews (ns) that distinguishes a partially degraded
/// MC from a healthy one given params.clk_original_ns: skews strictly inside
/// (lo, hi) produce code 11 for healthy and a disagreeing code for partial.
struct SkewWindow {
  double lo_ns = 0.0;
  double hi_ns = 0.0;
  bool valid() const { return lo_ns < hi_ns; }
  bool contains(double skew_ns) const {
    return skew_ns > lo_ns && skew_ns < hi_ns;
  }
};

/// Computes the distinguishing skew window for the given parameters.
SkewWindow distinguishing_skew_window(const CircuitParams& params);

// -- Sensing-robustness analysis (design-margin extension) -------------------

/// Gaussian variation applied per sensing operation.
struct NoiseModel {
  /// Relative σ of the effective capacitance (process variation + droplet
  /// loading variation).
  double c_sigma_rel = 0.0;
  /// σ of each DFF clock edge (ns), independent per edge (jitter).
  double clk_jitter_ns = 0.0;
};

/// Monte-Carlo misclassification statistics for one true health class.
struct ClassificationStats {
  int samples = 0;
  int errors = 0;       ///< sensed class != true class
  double error_rate = 0.0;
};

/// Estimates how often the dual-DFF sensor misclassifies a microelectrode
/// of true class @p cls under @p noise (analytic RC crossing per sample).
ClassificationStats classification_errors(HealthClass cls,
                                          const CircuitParams& params,
                                          const NoiseModel& noise,
                                          int samples, Rng& rng);

}  // namespace meda::mcell
