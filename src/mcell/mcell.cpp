#include "mcell/mcell.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meda::mcell {

double Transient::at(double t_ns) const {
  MEDA_REQUIRE(!v.empty() && dt_ns > 0.0, "empty transient");
  if (t_ns <= 0.0) return v.front();
  const double idx = t_ns / dt_ns;
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double parallel_plate_capacitance(double area_m2, double permittivity_f_per_m,
                                  double gap_m) {
  MEDA_REQUIRE(area_m2 > 0.0 && permittivity_f_per_m > 0.0 && gap_m > 0.0,
               "capacitance parameters must be positive");
  return permittivity_f_per_m * area_m2 / gap_m;
}

Transient simulate_discharge(double r_ohm, double c_farad,
                             const CircuitParams& params) {
  MEDA_REQUIRE(r_ohm > 0.0 && c_farad > 0.0, "RC values must be positive");
  MEDA_REQUIRE(params.sim_dt_ns > 0.0 && params.sim_horizon_ns > 0.0,
               "simulation controls must be positive");
  const double tau_ns = r_ohm * c_farad * 1e9;  // RC in nanoseconds
  MEDA_REQUIRE(params.sim_dt_ns < tau_ns,
               "integration step must resolve the RC constant");
  Transient trace;
  trace.dt_ns = params.sim_dt_ns;
  const auto steps = static_cast<std::size_t>(
      std::ceil(params.sim_horizon_ns / params.sim_dt_ns));
  trace.v.reserve(steps + 1);
  double v = params.vdd;
  trace.v.push_back(v);
  for (std::size_t i = 0; i < steps; ++i) {
    v += params.sim_dt_ns * (-v / tau_ns);  // explicit Euler on dV/dt = -V/RC
    trace.v.push_back(v);
  }
  return trace;
}

double threshold_crossing_ns(const Transient& trace, double vth) {
  MEDA_REQUIRE(!trace.v.empty(), "empty transient");
  for (std::size_t i = 0; i < trace.v.size(); ++i) {
    if (trace.v[i] < vth) {
      if (i == 0) return 0.0;
      // Linear interpolation between the bracketing samples.
      const double v0 = trace.v[i - 1];
      const double v1 = trace.v[i];
      const double frac = (v0 - vth) / (v0 - v1);
      return (static_cast<double>(i - 1) + frac) * trace.dt_ns;
    }
  }
  return static_cast<double>(trace.v.size() - 1) * trace.dt_ns;
}

int sense_code(const Transient& trace, const CircuitParams& params) {
  const double t_original = params.clk_original_ns;
  const double t_added = params.clk_original_ns + params.clk_skew_ns;
  const int bit_original = trace.at(t_original) >= params.vth ? 1 : 0;
  const int bit_added = trace.at(t_added) >= params.vth ? 1 : 0;
  return (bit_original << 1) | bit_added;
}

int sense_code(HealthClass cls, const CircuitParams& params) {
  double r = params.r_healthy;
  double c = params.c_healthy;
  switch (cls) {
    case HealthClass::kHealthy: break;
    case HealthClass::kPartial:
      r = params.r_partial;
      c = params.c_partial;
      break;
    case HealthClass::kComplete:
      r = params.r_complete;
      c = params.c_complete;
      break;
  }
  return sense_code(simulate_discharge(r, c, params), params);
}

HealthClass classify(int code) {
  MEDA_REQUIRE(code >= 0 && code <= 3, "sense code out of range");
  switch (code) {
    case 0b11: return HealthClass::kHealthy;
    case 0b00: return HealthClass::kComplete;
    default: return HealthClass::kPartial;  // DFFs disagree
  }
}

ClassificationStats classification_errors(HealthClass cls,
                                          const CircuitParams& params,
                                          const NoiseModel& noise,
                                          int samples, Rng& rng) {
  MEDA_REQUIRE(samples > 0, "need at least one sample");
  MEDA_REQUIRE(noise.c_sigma_rel >= 0.0 && noise.clk_jitter_ns >= 0.0,
               "noise parameters must be non-negative");
  double r = params.r_healthy;
  double c = params.c_healthy;
  switch (cls) {
    case HealthClass::kHealthy: break;
    case HealthClass::kPartial:
      r = params.r_partial;
      c = params.c_partial;
      break;
    case HealthClass::kComplete:
      r = params.r_complete;
      c = params.c_complete;
      break;
  }
  ClassificationStats stats;
  stats.samples = samples;
  const double log_ratio = std::log(params.vdd / params.vth);
  for (int i = 0; i < samples; ++i) {
    const double c_eff = c * (1.0 + rng.normal(0.0, noise.c_sigma_rel));
    // Analytic exponential discharge: V(t) = VDD·e^{-t/RC} crosses Vth at
    // t = RC·ln(VDD/Vth).
    const double t_cross_ns = r * std::max(c_eff, 1e-18) * 1e9 * log_ratio;
    const double t_original =
        params.clk_original_ns + rng.normal(0.0, noise.clk_jitter_ns);
    const double t_added = params.clk_original_ns + params.clk_skew_ns +
                           rng.normal(0.0, noise.clk_jitter_ns);
    const int bit_original = t_original < t_cross_ns ? 1 : 0;
    const int bit_added = t_added < t_cross_ns ? 1 : 0;
    if (classify((bit_original << 1) | bit_added) != cls) ++stats.errors;
  }
  stats.error_rate = static_cast<double>(stats.errors) / samples;
  return stats;
}

SkewWindow distinguishing_skew_window(const CircuitParams& params) {
  const Transient healthy =
      simulate_discharge(params.r_healthy, params.c_healthy, params);
  const Transient partial =
      simulate_discharge(params.r_partial, params.c_partial, params);
  const double t_healthy = threshold_crossing_ns(healthy, params.vth);
  const double t_partial = threshold_crossing_ns(partial, params.vth);
  // The original DFF must still read 1 for both classes; the added DFF must
  // read 1 for healthy (edge before t_healthy) and 0 for partial (edge after
  // t_partial).
  SkewWindow window;
  window.lo_ns = t_partial - params.clk_original_ns;
  window.hi_ns = t_healthy - params.clk_original_ns;
  window.lo_ns = std::max(window.lo_ns, 0.0);
  return window;
}

}  // namespace meda::mcell
