#pragma once

/// @file meda.hpp
/// Umbrella header: the public API of the meda-routing library.
///
/// Layering (see docs/architecture.md): geometry/util < chip < model <
/// assay < core < sim. Include this for application code; include the
/// individual headers for faster builds of library-internal code.

// Foundations
#include "geometry/direction.hpp"
#include "geometry/point.hpp"
#include "geometry/rect.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Biochip substrate (Sections III-IV)
#include "chip/biochip.hpp"
#include "chip/degradation.hpp"
#include "chip/fault_injection.hpp"
#include "chip/microelectrode.hpp"
#include "chip/scan_chain.hpp"
#include "mcell/mcell.hpp"
#include "pcb/pcb.hpp"

// Droplet/actuation model and the SMG (Section V)
#include "model/action.hpp"
#include "model/actuation.hpp"
#include "model/frontier.hpp"
#include "model/guards.hpp"
#include "model/outcomes.hpp"
#include "model/smg.hpp"

// Bioassays (Section VI-A/B)
#include "assay/benchmarks.hpp"
#include "assay/concentration.hpp"
#include "assay/helper.hpp"
#include "assay/mo.hpp"
#include "assay/parser.hpp"
#include "assay/planner.hpp"
#include "assay/registry.hpp"
#include "assay/summary.hpp"

// Synthesis framework (Section VI) and extensions
#include "core/biochip_io.hpp"
#include "core/evaluation.hpp"
#include "core/fleet_planner.hpp"
#include "core/library.hpp"
#include "core/library_io.hpp"
#include "core/mdp.hpp"
#include "core/pair_planner.hpp"
#include "core/prism_export.hpp"
#include "core/routability.hpp"
#include "core/scheduler.hpp"
#include "core/strategy.hpp"
#include "core/strategy_render.hpp"
#include "core/synthesizer.hpp"
#include "core/value_iteration.hpp"

// Simulation and experiments (Section VII)
#include "sim/adversary.hpp"
#include "sim/analysis.hpp"
#include "sim/campaign.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/simulated_chip.hpp"
