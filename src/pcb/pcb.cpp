#include "pcb/pcb.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meda::pcb {

ElectrodeSpec electrode_2mm() {
  return ElectrodeSpec{2.0, 8.0, 0.0030, 2.0, 4.0};
}

ElectrodeSpec electrode_3mm() {
  return ElectrodeSpec{3.0, 18.0, 0.0070, 2.0, 4.0};
}

ElectrodeSpec electrode_4mm() {
  return ElectrodeSpec{4.0, 32.0, 0.0130, 2.0, 4.0};
}

void Electrode::actuate(double seconds) {
  MEDA_REQUIRE(seconds > 0.0, "actuation duration must be positive");
  double rate = spec_.trap_rate_pf_per_s;
  // Long actuations leave residual charge in the dielectric; beyond the
  // threshold the trapping rate accelerates (Fig. 5(b) grows much faster
  // than Fig. 5(a)).
  if (seconds > spec_.residual_threshold_s) rate *= spec_.residual_boost;
  trapped_pf_ += rate * seconds;
  ++actuations_;
}

double Electrode::capacitance_pf() const { return spec_.c0_pf + trapped_pf_; }

double Electrode::charging_time_s(double r_ohm, double fraction) const {
  MEDA_REQUIRE(r_ohm > 0.0, "series resistance must be positive");
  MEDA_REQUIRE(fraction > 0.0 && fraction < 1.0,
               "charging fraction must lie in (0, 1)");
  const double c_farad = capacitance_pf() * 1e-12;
  return -r_ohm * c_farad * std::log(1.0 - fraction);
}

double MeasurementRig::measure_capacitance_pf(const Electrode& electrode,
                                              Rng& rng) const {
  // The scope measures the charging time t*; inverting the RC equation gives
  // C = −t*/(R·ln(1 − fraction)). Timing jitter enters multiplicatively.
  const double t_true = electrode.charging_time_s(r_ohm, fraction);
  const double t_measured = t_true * (1.0 + rng.normal(0.0, noise_rel));
  const double c_farad = -t_measured / (r_ohm * std::log(1.0 - fraction));
  return c_farad * 1e12;
}

DegradationSeries run_degradation_experiment(const ElectrodeSpec& spec,
                                             const MeasurementRig& rig,
                                             double actuation_seconds,
                                             int total_actuations,
                                             int measure_every, Rng& rng) {
  MEDA_REQUIRE(total_actuations > 0, "need at least one actuation");
  MEDA_REQUIRE(measure_every > 0, "measurement interval must be positive");
  Electrode electrode(spec);
  DegradationSeries series;
  series.actuations.push_back(0.0);
  series.capacitance_pf.push_back(rig.measure_capacitance_pf(electrode, rng));
  for (int n = 1; n <= total_actuations; ++n) {
    electrode.actuate(actuation_seconds);
    if (n % measure_every == 0) {
      series.actuations.push_back(static_cast<double>(n));
      series.capacitance_pf.push_back(
          rig.measure_capacitance_pf(electrode, rng));
    }
  }
  return series;
}

ForceSeries measure_relative_force(const DegradationParams& truth,
                                   int total_actuations, int measure_every,
                                   double noise_rel, Rng& rng) {
  MEDA_REQUIRE(total_actuations > 0, "need at least one actuation");
  MEDA_REQUIRE(measure_every > 0, "measurement interval must be positive");
  ForceSeries series;
  for (int n = 0; n <= total_actuations; n += measure_every) {
    const double f = truth.relative_force(static_cast<std::uint64_t>(n));
    const double noisy = f * (1.0 + rng.normal(0.0, noise_rel));
    series.actuations.push_back(static_cast<double>(n));
    series.relative_force.push_back(std::clamp(noisy, 1e-9, 1.0));
  }
  return series;
}

ForceFit fit_force_model(const ForceSeries& series, double c_reference) {
  MEDA_REQUIRE(c_reference > 0.0, "reference c must be positive");
  const stats::FitResult raw =
      stats::exponential_fit(series.actuations, series.relative_force);
  ForceFit fit;
  fit.k = raw.slope;
  fit.c = c_reference;
  fit.tau = std::exp(fit.k * c_reference / 2.0);
  fit.r2_adjusted = raw.r2_adjusted;
  return fit;
}

}  // namespace meda::pcb
