#pragma once

#include <vector>

#include "chip/degradation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

/// @file pcb.hpp
/// Synthetic stand-in for the fabricated PCB DMFB degradation experiments of
/// Section IV-A (Fig. 4-6).
///
/// The paper actuates PCB electrodes (2×2, 3×3, 4×4 mm²) hundreds of times at
/// 200 Vpp through a 1 MΩ series resistor and measures the charging time on an
/// oscilloscope, observing:
///   (a) capacitance grows linearly with the number of 1 s actuations
///       (charge trapping), Fig. 5(a);
///   (b) growth is much faster with 5 s actuations (residual charge),
///       Fig. 5(b);
///   (c) the relative EWOD force decays exponentially with the actuation
///       count and fits F̄(n) = τ^(2n/c) with R²adj > 0.94, Fig. 6.
///
/// We model each electrode as an RC node whose capacitance gains a fixed
/// increment per actuation-second (with a super-linear boost for long
/// actuations that leave residual charge), and "measure" it exactly the way
/// the paper does — by timing the V_C(t) = Vpp·(1 − e^{−t/RC}) charging curve
/// with oscilloscope noise. The force-model fit consumes a noisy force series
/// generated from the ground-truth exponential, reproducing the paper's
/// fitting pipeline end-to-end.

namespace meda::pcb {

/// Geometry and trapping behaviour of one PCB electrode size.
struct ElectrodeSpec {
  double size_mm = 2.0;          ///< square edge length
  double c0_pf = 10.0;           ///< pristine capacitance (pF)
  double trap_rate_pf_per_s = 0.004;  ///< capacitance gained per actuated second
  double residual_threshold_s = 2.0;  ///< actuations longer than this leave
                                      ///< residual charge
  double residual_boost = 4.0;   ///< trapping-rate multiplier beyond threshold
};

/// Electrode specs mirroring the three sizes on the fabricated DMFB. Larger
/// electrodes have larger pristine capacitance and trap charge faster.
ElectrodeSpec electrode_2mm();
ElectrodeSpec electrode_3mm();
ElectrodeSpec electrode_4mm();

/// One PCB electrode under repeated actuation.
class Electrode {
 public:
  explicit Electrode(ElectrodeSpec spec) : spec_(spec) {}

  /// Applies one actuation of @p seconds at the nominal drive voltage.
  void actuate(double seconds);

  int actuation_count() const { return actuations_; }
  const ElectrodeSpec& spec() const { return spec_; }

  /// True (noise-free) capacitance in pF.
  double capacitance_pf() const;

  /// Time for V_C to reach @p fraction·Vpp through @p r_ohm:
  /// t = −RC·ln(1 − fraction). Seconds.
  double charging_time_s(double r_ohm, double fraction) const;

 private:
  ElectrodeSpec spec_;
  int actuations_ = 0;
  double trapped_pf_ = 0.0;
};

/// Electrical setup of the measurement rig (Section IV-A).
struct MeasurementRig {
  double vpp = 200.0;          ///< drive amplitude (V)
  double r_ohm = 1e6;          ///< series resistor (1 MΩ)
  double fraction = 0.9;       ///< charging fraction timed on the scope
  double noise_rel = 0.01;     ///< relative oscilloscope timing noise

  /// Estimates C (pF) from a noisy charging-time measurement of @p electrode.
  double measure_capacitance_pf(const Electrode& electrode, Rng& rng) const;
};

/// A capacitance-vs-actuations series (one Fig. 5 curve).
struct DegradationSeries {
  std::vector<double> actuations;       ///< n
  std::vector<double> capacitance_pf;   ///< measured C(n)
};

/// Runs the Fig. 5 experiment: repeatedly actuate for @p actuation_seconds,
/// measuring every @p measure_every actuations, @p total_actuations in total.
DegradationSeries run_degradation_experiment(const ElectrodeSpec& spec,
                                             const MeasurementRig& rig,
                                             double actuation_seconds,
                                             int total_actuations,
                                             int measure_every, Rng& rng);

/// A relative-EWOD-force-vs-actuations series (one Fig. 6 curve).
struct ForceSeries {
  std::vector<double> actuations;
  std::vector<double> relative_force;
};

/// Generates a noisy measured force series from the ground-truth exponential
/// F̄(n) = τ^(2n/c) (multiplicative noise, clamped to (0, 1]).
ForceSeries measure_relative_force(const DegradationParams& truth,
                                   int total_actuations, int measure_every,
                                   double noise_rel, Rng& rng);

/// Result of fitting F̄(n) = τ^(2n/c) to a force series.
struct ForceFit {
  double k = 0.0;            ///< identifiable decay rate, F = e^{k·n}
  double tau = 0.0;          ///< reported τ (see below)
  double c = 0.0;            ///< reported c (see below)
  double r2_adjusted = 0.0;  ///< adjusted R² in force space
};

/// Fits the exponential force model. Only k = 2·ln(τ)/c is identifiable from
/// a single series; following the paper's convention we pin c to the
/// charge-trapping time-constant @p c_reference obtained from the Fig. 5
/// experiment for the same electrode and report τ = exp(k·c/2).
ForceFit fit_force_model(const ForceSeries& series, double c_reference);

}  // namespace meda::pcb
