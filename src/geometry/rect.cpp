#include "geometry/rect.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace meda {

Rect Rect::from_center(double cx, double cy, int w, int h) {
  MEDA_REQUIRE(w >= 1 && h >= 1, "droplet dimensions must be positive");
  // The lower-left corner that best centers a w×h pattern on (cx, cy):
  // xa = cx - (w-1)/2, rounded to the grid. For half-integer centers of
  // matching parity this is exact (e.g. center 17.5, w=4 → xa=16).
  const int xa = static_cast<int>(std::lround(cx - (w - 1) / 2.0));
  const int ya = static_cast<int>(std::lround(cy - (h - 1) / 2.0));
  return Rect::from_size(xa, ya, w, h);
}

Rect Rect::union_with(const Rect& o) const {
  if (!valid()) return o;
  if (!o.valid()) return *this;
  return Rect{std::min(xa, o.xa), std::min(ya, o.ya), std::max(xb, o.xb),
              std::max(yb, o.yb)};
}

Rect Rect::intersection_with(const Rect& o) const {
  return Rect{std::max(xa, o.xa), std::max(ya, o.ya), std::min(xb, o.xb),
              std::min(yb, o.yb)};
}

int Rect::manhattan_gap(const Rect& o) const {
  MEDA_REQUIRE(valid() && o.valid(), "manhattan_gap of invalid rect");
  const int dx = std::max({0, o.xa - xb, xa - o.xb});
  const int dy = std::max({0, o.ya - yb, ya - o.yb});
  return dx + dy;
}

std::string Rect::to_string() const {
  std::ostringstream os;
  os << '(' << xa << ", " << ya << ", " << xb << ", " << yb << ')';
  return os.str();
}

}  // namespace meda
