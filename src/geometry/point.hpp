#pragma once

#include <compare>
#include <cstdlib>
#include <functional>

/// @file point.hpp
/// Integer grid coordinates. A microelectrode cell MC_ij sits at x = i
/// (column) and y = j (row); the origin is the chip's lower-left corner.

namespace meda {

/// A 2-D integer point / displacement on the microelectrode grid.
struct Vec2i {
  int x = 0;
  int y = 0;

  friend constexpr Vec2i operator+(Vec2i a, Vec2i b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2i operator-(Vec2i a, Vec2i b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr auto operator<=>(const Vec2i&, const Vec2i&) = default;
};

/// Manhattan (L1) distance between two grid points.
constexpr int manhattan(Vec2i a, Vec2i b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev (L∞) distance between two grid points.
constexpr int chebyshev(Vec2i a, Vec2i b) {
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  return dx > dy ? dx : dy;
}

}  // namespace meda

template <>
struct std::hash<meda::Vec2i> {
  std::size_t operator()(const meda::Vec2i& v) const noexcept {
    return std::hash<long long>{}(
        (static_cast<long long>(v.x) << 32) ^
        static_cast<long long>(static_cast<unsigned int>(v.y)));
  }
};
