#pragma once

#include <array>
#include <string_view>

#include "geometry/point.hpp"

/// @file direction.hpp
/// Cardinal and ordinal directions used by droplet movements (Section V-B).

namespace meda {

/// Cardinal direction of a droplet movement or a frontier set.
enum class Dir : unsigned char { N, S, E, W };

/// Ordinal (diagonal) direction, a pair of a vertical and horizontal cardinal.
enum class Ordinal : unsigned char { NE, NW, SE, SW };

inline constexpr std::array<Dir, 4> kAllDirs = {Dir::N, Dir::S, Dir::E,
                                                Dir::W};
inline constexpr std::array<Ordinal, 4> kAllOrdinals = {
    Ordinal::NE, Ordinal::NW, Ordinal::SE, Ordinal::SW};

/// Unit displacement of a cardinal direction (N = +y, E = +x).
constexpr Vec2i unit(Dir d) {
  switch (d) {
    case Dir::N: return {0, 1};
    case Dir::S: return {0, -1};
    case Dir::E: return {1, 0};
    case Dir::W: return {-1, 0};
  }
  return {0, 0};
}

/// Vertical component of an ordinal direction.
constexpr Dir vertical(Ordinal o) {
  return (o == Ordinal::NE || o == Ordinal::NW) ? Dir::N : Dir::S;
}

/// Horizontal component of an ordinal direction.
constexpr Dir horizontal(Ordinal o) {
  return (o == Ordinal::NE || o == Ordinal::SE) ? Dir::E : Dir::W;
}

/// Unit displacement of an ordinal direction.
constexpr Vec2i unit(Ordinal o) { return unit(vertical(o)) + unit(horizontal(o)); }

/// True for N and S.
constexpr bool is_vertical(Dir d) { return d == Dir::N || d == Dir::S; }

/// Opposite cardinal direction.
constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::N: return Dir::S;
    case Dir::S: return Dir::N;
    case Dir::E: return Dir::W;
    case Dir::W: return Dir::E;
  }
  return d;
}

constexpr std::string_view to_string(Dir d) {
  switch (d) {
    case Dir::N: return "N";
    case Dir::S: return "S";
    case Dir::E: return "E";
    case Dir::W: return "W";
  }
  return "?";
}

constexpr std::string_view to_string(Ordinal o) {
  switch (o) {
    case Ordinal::NE: return "NE";
    case Ordinal::NW: return "NW";
    case Ordinal::SE: return "SE";
    case Ordinal::SW: return "SW";
  }
  return "??";
}

}  // namespace meda
