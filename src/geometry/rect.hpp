#pragma once

#include <compare>
#include <functional>
#include <string>

#include "geometry/point.hpp"

/// @file rect.hpp
/// Inclusive discrete rectangles. A droplet δ = (x_a, y_a, x_b, y_b) is
/// exactly such a rectangle (Section V-A): (x_a, y_a) is the lower-left and
/// (x_b, y_b) the upper-right corner, both inclusive.

namespace meda {

/// Axis-aligned inclusive rectangle on the microelectrode grid.
///
/// Invariant (checked by valid()): xa <= xb and ya <= yb. A Rect may be
/// constructed invalid to represent "no droplet"; see Rect::none().
struct Rect {
  int xa = 0;
  int ya = 0;
  int xb = -1;
  int yb = -1;

  /// The canonical empty/absent rectangle (used for off-chip droplets).
  static constexpr Rect none() { return Rect{0, 0, -1, -1}; }

  /// Builds a w×h rectangle whose lower-left corner is (x, y).
  static constexpr Rect from_size(int x, int y, int w, int h) {
    return Rect{x, y, x + w - 1, y + h - 1};
  }

  /// Builds the w×h rectangle best centered on the fractional center
  /// (cx, cy); the paper centers modules at half-integer coordinates
  /// (e.g. (17.5, 2.5) for a 4×4 droplet spanning [16,19]×[1,4]).
  static Rect from_center(double cx, double cy, int w, int h);

  constexpr bool valid() const { return xa <= xb && ya <= yb; }
  constexpr int width() const { return xb - xa + 1; }
  constexpr int height() const { return yb - ya + 1; }
  constexpr int area() const { return width() * height(); }

  /// Aspect ratio AR = w/h.
  constexpr double aspect_ratio() const {
    return static_cast<double>(width()) / static_cast<double>(height());
  }

  /// Fractional center (cx, cy) of the rectangle.
  constexpr double center_x() const { return (xa + xb) / 2.0; }
  constexpr double center_y() const { return (ya + yb) / 2.0; }

  constexpr Vec2i lower_left() const { return {xa, ya}; }
  constexpr Vec2i upper_right() const { return {xb, yb}; }

  /// True if the cell (x, y) lies inside the rectangle.
  constexpr bool contains(int x, int y) const {
    return x >= xa && x <= xb && y >= ya && y <= yb;
  }
  constexpr bool contains(Vec2i p) const { return contains(p.x, p.y); }

  /// True if @p inner lies fully inside this rectangle.
  constexpr bool contains(const Rect& inner) const {
    return inner.xa >= xa && inner.ya >= ya && inner.xb <= xb &&
           inner.yb <= yb;
  }

  /// True if the two rectangles share at least one cell.
  constexpr bool intersects(const Rect& o) const {
    return valid() && o.valid() && xa <= o.xb && o.xa <= xb && ya <= o.yb &&
           o.ya <= yb;
  }

  /// Rectangle translated by (dx, dy).
  constexpr Rect shifted(int dx, int dy) const {
    return Rect{xa + dx, ya + dy, xb + dx, yb + dy};
  }

  /// Rectangle grown by @p m cells on every side.
  constexpr Rect inflated(int m) const {
    return Rect{xa - m, ya - m, xb + m, yb + m};
  }

  /// Smallest rectangle containing both this and @p o.
  Rect union_with(const Rect& o) const;

  /// Intersection; returns an invalid Rect when disjoint.
  Rect intersection_with(const Rect& o) const;

  /// Minimum Manhattan distance between cell sets (0 if intersecting).
  int manhattan_gap(const Rect& o) const;

  /// "(xa, ya, xb, yb)" for logs and test diagnostics.
  std::string to_string() const;

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;
};

}  // namespace meda

template <>
struct std::hash<meda::Rect> {
  std::size_t operator()(const meda::Rect& r) const noexcept {
    std::size_t h = std::hash<int>{}(r.xa);
    auto mixin = [&h](int v) {
      h ^= std::hash<int>{}(v) + 0x9e3779b9u + (h << 6) + (h >> 2);
    };
    mixin(r.ya);
    mixin(r.xb);
    mixin(r.yb);
    return h;
  }
};
