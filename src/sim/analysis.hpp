#pragma once

#include <span>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

/// @file analysis.hpp
/// The degradation-pattern analysis of Section III-C (Fig. 3): correlation
/// between the Boolean actuation vectors A_ij ∈ {0,1}^N of microelectrode
/// pairs as a function of their Manhattan distance.

namespace meda::sim {

/// Mean pairwise actuation correlation per Manhattan distance.
struct CorrelationByDistance {
  std::vector<int> distance;      ///< the d values
  std::vector<double> mean_rho;   ///< mean ρ over sampled pairs at each d
  std::vector<int> pairs;         ///< number of pairs averaged at each d
};

/// Computes ρ(A_ij, A_kl) statistics from a recorded actuation trace
/// (one BoolMatrix per operational cycle).
///
/// Only MCs with non-constant actuation vectors participate (a constant
/// vector has σ = 0; the paper's convention maps those to ρ = 0 and we
/// exclude them from the average to avoid diluting the signal with MCs the
/// bioassay never touched). At most @p max_pairs_per_distance pairs are
/// sampled per distance.
CorrelationByDistance actuation_correlation(
    const std::vector<BoolMatrix>& trace, std::span<const int> distances,
    int max_pairs_per_distance, Rng& rng);

/// How evenly the wear is spread over the chip — evidence for (or against)
/// wear-leveling routing policies.
struct WearDistribution {
  double mean = 0.0;      ///< mean actuation count per MC
  double max = 0.0;       ///< hottest MC (lifetime is bounded by it)
  double p95 = 0.0;       ///< 95th-percentile actuation count
  /// Gini coefficient of the per-MC actuation counts: 0 = perfectly even
  /// wear, → 1 = all wear concentrated on a few cells.
  double gini = 0.0;
};

/// Summarizes the per-MC actuation counts of @p counts (a chip's
/// actuation_matrix()).
WearDistribution wear_distribution(const Matrix<std::uint64_t>& counts);

}  // namespace meda::sim
