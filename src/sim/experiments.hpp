#pragma once

#include <cstdint>
#include <vector>

#include "assay/mo.hpp"
#include "core/library.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"

/// @file experiments.hpp
/// Experiment harnesses for the paper's evaluation (Section VII):
///  - repeated executions of a bioassay on one (reused, degrading) chip and
///    the PoS(k_max) metric of Fig. 15;
///  - fault-injection trials (five successes or abort) of Fig. 16.

namespace meda::sim {

/// One bioassay execution on a chip.
struct RunRecord {
  bool success = false;
  std::uint64_t cycles = 0;
  core::ExecutionStats stats;
};

/// Configuration for repeated executions on a single chip instance.
struct RepeatedRunsConfig {
  SimulatedChipConfig chip{};
  core::SchedulerConfig scheduler{};
  int runs = 10;            ///< executions on the same chip
  std::uint64_t seed = 1;   ///< chip + outcome randomness
};

/// Executes @p assay `runs` times on one chip (degradation persists across
/// executions; droplets are cleared in between). A shared strategy library
/// implements the hybrid scheduling scheme across executions.
std::vector<RunRecord> run_repeated(const assay::MoList& assay,
                                    const RepeatedRunsConfig& config);

/// PoS(k_max): the fraction of runs that completed successfully within
/// @p kmax cycles (Fig. 15's y-axis).
double probability_of_success(const std::vector<RunRecord>& records,
                              std::uint64_t kmax);

/// Fig. 16 trial configuration: repeat the bioassay on one chip until
/// `successes_target` successful executions, aborting when the cumulative
/// cycle count exceeds `kmax_total`.
struct TrialConfig {
  SimulatedChipConfig chip{};
  core::SchedulerConfig scheduler{};
  int successes_target = 5;
  std::uint64_t kmax_total = 1000;
  std::uint64_t seed = 1;
};

/// Fig. 16 trial outcome.
struct TrialResult {
  std::uint64_t total_cycles = 0;     ///< cumulative cycles over the trial
  int successes = 0;
  int executions = 0;
  int first_failure_execution = 0;    ///< 1-based; 0 = never failed
  bool aborted = false;               ///< ran out of the cycle budget
};

/// Runs one Fig. 16 trial.
TrialResult run_trial(const assay::MoList& assay, const TrialConfig& config);

/// The offline phase of the hybrid scheduling scheme (Section VI-D):
/// executes @p assay once on a pristine simulated twin of the chip, filling
/// @p library with pre-synthesized full-health strategies for every routing
/// job the scheduler will encounter. On an undegraded chip all moves are
/// deterministic, so a subsequent real execution is served entirely from
/// the library (zero runtime synthesis calls until health changes).
///
/// Returns the number of strategies in the library afterwards.
std::size_t precompute_offline_library(core::StrategyLibrary& library,
                                       const assay::MoList& assay,
                                       const BiochipConfig& chip_config,
                                       const core::SchedulerConfig& scheduler);

}  // namespace meda::sim
