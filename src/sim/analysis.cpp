#include "sim/analysis.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace meda::sim {

CorrelationByDistance actuation_correlation(
    const std::vector<BoolMatrix>& trace, std::span<const int> distances,
    int max_pairs_per_distance, Rng& rng) {
  MEDA_REQUIRE(!trace.empty(), "empty actuation trace");
  MEDA_REQUIRE(max_pairs_per_distance > 0, "need a positive pair budget");
  const int width = trace.front().width();
  const int height = trace.front().height();
  const auto cycles = trace.size();

  // Transpose the trace into per-cell actuation vectors, keeping only cells
  // whose vector is non-constant (0 < count < cycles).
  std::vector<std::vector<unsigned char>> vectors(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  std::vector<std::size_t> counts(vectors.size(), 0);
  for (const BoolMatrix& pattern : trace) {
    MEDA_REQUIRE(pattern.width() == width && pattern.height() == height,
                 "inconsistent trace dimensions");
  }
  for (std::size_t c = 0; c < cycles; ++c) {
    const BoolMatrix& pattern = trace[c];
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        const std::size_t idx = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(width) +
                                static_cast<std::size_t>(x);
        if (vectors[idx].empty()) vectors[idx].resize(cycles, 0);
        vectors[idx][c] = pattern(x, y);
        counts[idx] += pattern(x, y);
      }
    }
  }
  std::vector<int> active;  // flat indices of non-constant cells
  for (std::size_t i = 0; i < vectors.size(); ++i)
    if (counts[i] > 0 && counts[i] < cycles)
      active.push_back(static_cast<int>(i));

  CorrelationByDistance result;
  for (const int d : distances) {
    MEDA_REQUIRE(d >= 1, "distance must be positive");
    // Enumerate active pairs at exactly Manhattan distance d (looking only
    // at dy >= 0, dx > 0 when dy == 0 to count each pair once).
    std::vector<std::pair<int, int>> candidates;
    std::vector<bool> is_active(vectors.size(), false);
    for (int idx : active) is_active[static_cast<std::size_t>(idx)] = true;
    for (const int idx : active) {
      const int x = idx % width;
      const int y = idx / width;
      for (int dy = 0; dy <= d; ++dy) {
        const int dx = d - dy;
        const int y2 = y + dy;
        if (y2 >= height) continue;
        for (const int sx : {dx, -dx}) {
          if (dy == 0 && sx <= 0) continue;  // avoid double-counting
          if (dx == 0 && sx < 0) continue;   // dx == 0 has one variant
          const int x2 = x + sx;
          if (x2 < 0 || x2 >= width) continue;
          const int idx2 = y2 * width + x2;
          if (is_active[static_cast<std::size_t>(idx2)])
            candidates.emplace_back(idx, idx2);
          if (dx == 0) break;
        }
      }
    }

    if (static_cast<int>(candidates.size()) > max_pairs_per_distance) {
      // Sample a deterministic subset.
      std::vector<int> pick = sample_without_replacement(
          rng, static_cast<int>(candidates.size()), max_pairs_per_distance);
      std::vector<std::pair<int, int>> subset;
      subset.reserve(pick.size());
      for (int i : pick) subset.push_back(candidates[static_cast<std::size_t>(i)]);
      candidates = std::move(subset);
    }

    double total = 0.0;
    for (const auto& [a, b] : candidates) {
      total += stats::pearson_bool(vectors[static_cast<std::size_t>(a)],
                                   vectors[static_cast<std::size_t>(b)]);
    }
    result.distance.push_back(d);
    result.pairs.push_back(static_cast<int>(candidates.size()));
    result.mean_rho.push_back(
        candidates.empty() ? 0.0 : total / static_cast<double>(candidates.size()));
  }
  return result;
}

WearDistribution wear_distribution(const Matrix<std::uint64_t>& counts) {
  MEDA_REQUIRE(!counts.empty(), "empty actuation matrix");
  std::vector<double> values;
  values.reserve(counts.size());
  for (const std::uint64_t n : counts.data())
    values.push_back(static_cast<double>(n));
  std::sort(values.begin(), values.end());

  WearDistribution dist;
  const auto n = static_cast<double>(values.size());
  double total = 0.0;
  double weighted = 0.0;  // Σ (i+1)·x_(i) over the sorted values
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  dist.mean = total / n;
  dist.max = values.back();
  dist.p95 = values[static_cast<std::size_t>(0.95 * (n - 1))];
  // Gini = (2·Σ i·x_(i))/(n·Σ x) − (n+1)/n for sorted x, 1-based i.
  dist.gini =
      total > 0.0 ? 2.0 * weighted / (n * total) - (n + 1.0) / n : 0.0;
  return dist;
}

}  // namespace meda::sim
