#pragma once

#include <memory>
#include <vector>

#include "chip/biochip.hpp"
#include "core/biochip_io.hpp"
#include "geometry/rect.hpp"
#include "util/rng.hpp"

/// @file adversary.hpp
/// Degradation-player strategies for the MEDA SMG (Section V-C).
///
/// The paper abstracts biochip degradation as a non-deterministic second
/// player precisely so that "a wide range of assumptions regarding the
/// degradation behavior and fault-injection modes" can be modeled. The
/// natural wear process (actuation-driven τ^(n/c) decay plus sudden faults)
/// is one resolution of that non-determinism; this header provides explicit
/// adversarial resolutions that actively damage microelectrodes during
/// execution, for robustness evaluation:
///
///  - RandomAdversary      — damages uniformly random MCs (environmental
///                           stress not correlated with the workload);
///  - FrontierAdversary    — damages MCs adjacent to on-chip droplets (the
///                           worst case for a router: the degradation player
///                           attacks exactly the cells about to pull).

namespace meda::sim {

/// The SMG's player ② — invoked once per operational cycle after actuation.
class DegradationAdversary {
 public:
  virtual ~DegradationAdversary() = default;

  /// Applies this cycle's degradation move. @p droplets are the post-step
  /// droplet positions; damage is dealt by adding wear to selected MCs.
  virtual void act(
      Biochip& chip,
      const std::vector<std::pair<core::DropletId, Rect>>& droplets,
      Rng& rng) = 0;
};

/// Common damage parameters.
struct AdversaryBudget {
  int cells_per_cycle = 1;          ///< MCs damaged each cycle
  std::uint64_t wear_per_hit = 50;  ///< actuations' worth of added wear
};

/// Damages uniformly random MCs.
class RandomAdversary : public DegradationAdversary {
 public:
  explicit RandomAdversary(AdversaryBudget budget) : budget_(budget) {}
  void act(Biochip& chip,
           const std::vector<std::pair<core::DropletId, Rect>>& droplets,
           Rng& rng) override;

 private:
  AdversaryBudget budget_;
};

/// Damages MCs in the ring around on-chip droplets — the cells that will
/// form the frontiers of their next moves.
class FrontierAdversary : public DegradationAdversary {
 public:
  explicit FrontierAdversary(AdversaryBudget budget) : budget_(budget) {}
  void act(Biochip& chip,
           const std::vector<std::pair<core::DropletId, Rect>>& droplets,
           Rng& rng) override;

 private:
  AdversaryBudget budget_;
};

}  // namespace meda::sim
