#include "sim/report.hpp"

#include <fstream>
#include <sstream>

#include "core/recovery.hpp"
#include "util/check.hpp"

namespace meda::sim {

namespace {

/// Health-code → fill colour (b = 2 palette; higher b codes are bucketed).
const char* health_color(int code, int bits) {
  const int levels = 1 << bits;
  const double frac =
      levels > 1 ? static_cast<double>(code) / (levels - 1) : 1.0;
  if (frac >= 0.99) return "#e8f5e9";  // healthy
  if (frac >= 0.66) return "#c8e6c9";
  if (frac >= 0.33) return "#ffe082";
  if (frac > 0.0) return "#ff8a65";
  return "#b71c1c";  // dead
}

void emit_summary(std::ostringstream& os, const assay::MoList& assay,
                  const core::ExecutionStats& stats) {
  os << "<h1>" << assay.name << "</h1>\n<table class='kv'>"
     << "<tr><td>result</td><td><b>"
     << (stats.success ? "success" : "FAILED — " + stats.failure_reason)
     << "</b></td></tr>"
     << "<tr><td>operational cycles</td><td>" << stats.cycles << "</td></tr>"
     << "<tr><td>microfluidic operations</td><td>" << assay.ops.size()
     << "</td></tr>"
     << "<tr><td>synthesis calls / library hits / re-syntheses</td><td>"
     << stats.synthesis_calls << " / " << stats.library_hits << " / "
     << stats.resyntheses << "</td></tr>"
     << "<tr><td>synthesis wall time</td><td>"
     << stats.synthesis_seconds * 1e3 << " ms</td></tr>";
  if (stats.completed_mos + stats.aborted_mos > 0) {
    os << "<tr><td>MOs completed / aborted</td><td>" << stats.completed_mos
       << " / " << stats.aborted_mos << "</td></tr>";
  }
  os << "</table>\n";
}

void emit_recovery(std::ostringstream& os,
                   const core::ExecutionStats& stats) {
  if (!stats.recovery.any() && stats.events.empty() &&
      stats.recovery_events.empty())
    return;
  const core::RecoveryCounters& r = stats.recovery;
  os << "<h2>Recovery ladder</h2>\n<table class='kv'>"
     << "<tr><td>watchdog fires / forced re-senses</td><td>"
     << r.watchdog_fires << " / " << r.forced_resenses << "</td></tr>"
     << "<tr><td>synthesis retries / backoff cycles</td><td>"
     << r.synthesis_retries << " / " << r.backoff_cycles << "</td></tr>"
     << "<tr><td>quarantined cells / contention detours</td><td>"
     << r.quarantined_cells << " / " << r.contention_detours << "</td></tr>"
     << "<tr><td>aborted jobs</td><td>" << r.aborted_jobs
     << "</td></tr></table>\n";
  // The unified structured event log (recovery firings, stall
  // classifications, ...); fall back to the legacy recovery-only view for
  // stats produced without it.
  if (!stats.events.empty()) {
    os << "<h3>Event log</h3>\n<pre style='background:#fafafa;border:1px "
          "solid #ddd;padding:8px'>"
       << obs::format_events(stats.events) << "</pre>\n";
  } else if (!stats.recovery_events.empty()) {
    os << "<h3>Event log</h3>\n<pre style='background:#fafafa;border:1px "
          "solid #ddd;padding:8px'>"
       << core::format_events(stats.recovery_events) << "</pre>\n";
  }
}

void emit_gantt(std::ostringstream& os, const assay::MoList& assay,
                const core::ExecutionStats& stats) {
  if (stats.mo_timings.empty()) return;
  const double width = 720.0;
  const int row_h = 18;
  const double span = static_cast<double>(
      stats.cycles > 0 ? stats.cycles : 1);
  os << "<h2>MO schedule</h2>\n<svg width='" << width + 140 << "' height='"
     << (stats.mo_timings.size() + 1) * row_h << "'>\n";
  for (std::size_t i = 0; i < stats.mo_timings.size(); ++i) {
    const core::MoTiming& t = stats.mo_timings[i];
    const int y = static_cast<int>(i) * row_h;
    os << "<text x='0' y='" << y + 13 << "' font-size='11'>M" << t.mo << ' '
       << to_string(assay.op(t.mo).type) << "</text>\n";
    if (!t.done && t.activated == 0 && t.completed == 0) continue;
    const double x0 = 80 + width * static_cast<double>(t.activated) / span;
    const std::uint64_t end = t.done ? t.completed : stats.cycles;
    const double w =
        width * static_cast<double>(end - t.activated) / span;
    os << "<rect x='" << x0 << "' y='" << y + 3 << "' width='"
       << (w < 2 ? 2 : w) << "' height='" << row_h - 6 << "' fill='"
       << (t.done ? "#1976d2" : "#b71c1c") << "' rx='2'><title>M" << t.mo
       << ": " << t.activated << " – " << end << "</title></rect>\n";
  }
  os << "</svg>\n";
}

void emit_heatmap(std::ostringstream& os, const SimulatedChip& chip) {
  const Biochip& substrate = chip.substrate();
  const IntMatrix health = substrate.health_matrix();
  const int cell = 10;
  os << "<h2>Final health matrix (b = " << substrate.health_bits()
     << " bits)</h2>\n<svg width='" << substrate.width() * cell
     << "' height='" << substrate.height() * cell << "'>\n";
  for (int y = 0; y < substrate.height(); ++y) {
    for (int x = 0; x < substrate.width(); ++x) {
      // SVG y grows downward; chip y grows upward.
      const int sy = (substrate.height() - 1 - y) * cell;
      os << "<rect x='" << x * cell << "' y='" << sy << "' width='" << cell
         << "' height='" << cell << "' fill='"
         << health_color(health(x, y), substrate.health_bits())
         << "' stroke='#eee'><title>MC(" << x << "," << y
         << ") H=" << health(x, y)
         << " n=" << substrate.mc(x, y).actuations() << "</title></rect>\n";
    }
  }
  os << "</svg>\n";
}

void emit_trace(std::ostringstream& os, const SimulatedChip& chip) {
  const auto& trace = chip.droplet_trace();
  if (trace.empty()) return;
  const Biochip& substrate = chip.substrate();
  // Frames as JSON: [[[id, xa, ya, xb, yb], ...], ...].
  os << "<h2>Droplet trace (" << trace.size()
     << " cycles)</h2>\n<div><input type='range' id='scrub' min='0' max='"
     << trace.size() - 1
     << "' value='0' style='width:720px'> cycle <span id='cyc'>0</span>"
     << "</div>\n<svg id='anim' width='" << substrate.width() * 10
     << "' height='" << substrate.height() * 10
     << "' style='background:#fafafa;border:1px solid #ddd'></svg>\n"
     << "<script>\nconst H=" << substrate.height() << ";\nconst frames=[";
  for (std::size_t f = 0; f < trace.size(); ++f) {
    os << (f ? "," : "") << '[';
    for (std::size_t d = 0; d < trace[f].size(); ++d) {
      const auto& [id, pos] = trace[f][d];
      os << (d ? "," : "") << '[' << id << ',' << pos.xa << ',' << pos.ya
         << ',' << pos.xb << ',' << pos.yb << ']';
    }
    os << ']';
  }
  os << R"(];
const colors=['#1976d2','#388e3c','#f57c00','#7b1fa2','#c2185b','#00838f'];
const svg=document.getElementById('anim');
function draw(f){
  svg.innerHTML='';
  document.getElementById('cyc').textContent=f;
  for(const [id,xa,ya,xb,yb] of frames[f]){
    const r=document.createElementNS('http://www.w3.org/2000/svg','rect');
    r.setAttribute('x',xa*10);
    r.setAttribute('y',(H-1-yb)*10);
    r.setAttribute('width',(xb-xa+1)*10);
    r.setAttribute('height',(yb-ya+1)*10);
    r.setAttribute('fill',colors[id%colors.length]);
    r.setAttribute('rx',3);
    svg.appendChild(r);
  }
}
document.getElementById('scrub').addEventListener('input',
  e=>draw(+e.target.value));
draw(0);
</script>
)";
}

}  // namespace

std::string render_html_report(const assay::MoList& assay,
                               const core::ExecutionStats& stats,
                               const SimulatedChip& chip) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n<title>"
     << assay.name
     << " — meda-routing report</title>\n<style>body{font-family:sans-serif;"
        "margin:24px;max-width:960px}table.kv td{padding:2px 10px 2px 0}"
        "h2{margin-top:28px}</style>\n</head><body>\n";
  emit_summary(os, assay, stats);
  emit_recovery(os, stats);
  emit_gantt(os, assay, stats);
  emit_heatmap(os, chip);
  emit_trace(os, chip);
  os << "<p style='color:#888'>generated by meda-routing "
        "(DATE 2021 reproduction)</p>\n</body></html>\n";
  return os.str();
}

void write_html_report(const std::string& path, const assay::MoList& assay,
                       const core::ExecutionStats& stats,
                       const SimulatedChip& chip) {
  std::ofstream out(path);
  MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  out << render_html_report(assay, stats, chip);
}

}  // namespace meda::sim
