#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "assay/mo.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/stats.hpp"

/// @file campaign.hpp
/// Structured experiment campaigns: a grid of (bioassay × router
/// configuration) evaluated over a population of chips with repeated
/// executions each, aggregated with confidence intervals. This is the
/// driver behind `bench/evaluation_summary` and the recommended way to
/// benchmark a custom router configuration against the built-in ones.

namespace meda::sim {

/// One named router (scheduler) configuration to evaluate.
struct RouterConfig {
  std::string name;
  core::SchedulerConfig scheduler;
};

/// Campaign-wide controls.
struct CampaignConfig {
  SimulatedChipConfig chip{};
  int chips = 5;           ///< chip instances per (assay, router) cell
  int runs_per_chip = 10;  ///< repeated executions per chip (reuse)
  std::uint64_t seed0 = 1; ///< chip i uses seed0 + i (identical across routers)
};

/// Aggregated results of one (assay, router) cell.
struct CampaignCell {
  std::string assay;
  std::string router;
  int runs = 0;
  int successes = 0;
  double success_rate = 0.0;
  stats::RunningStats cycles;       ///< over successful runs
  stats::RunningStats resyntheses;  ///< over all runs
};

/// Runs the full grid. Chips are seeded identically across routers, so the
/// comparison is paired.
std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config);

/// Prints the campaign as an aligned table (success rate ± CI over chips is
/// approximated by the binomial SE; cycles carry a t-based 95% CI).
void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells);

}  // namespace meda::sim
