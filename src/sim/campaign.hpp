#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "assay/mo.hpp"
#include "core/library.hpp"
#include "core/scheduler.hpp"
#include "sim/adversary.hpp"
#include "sim/simulated_chip.hpp"
#include "util/stats.hpp"

/// @file campaign.hpp
/// Structured experiment campaigns: a grid of (bioassay × router
/// configuration) evaluated over a population of chips with repeated
/// executions each, aggregated with confidence intervals. This is the
/// driver behind `bench/evaluation_summary` and the recommended way to
/// benchmark a custom router configuration against the built-in ones.

namespace meda::sim {

/// One named router (scheduler) configuration to evaluate.
struct RouterConfig {
  std::string name;
  core::SchedulerConfig scheduler;
};

/// Crash-safe checkpointing of the flattened (cell, chip) grid (see
/// util/checkpoint.hpp): completed slots are persisted with atomic
/// write-temp-then-rename, and a resumed run replays only the missing
/// slots. Results are identical — byte-for-byte in any CSV written from
/// the cells — whether the campaign ran straight through, was killed and
/// resumed, or resumed at a different jobs count, because each slot's
/// content depends only on its index. The file is keyed by a digest of the
/// grid identity (seeds, counts, assay/router/level names plus a
/// driver-supplied salt); a mismatch discards the stale file.
struct CampaignCheckpoint {
  std::string path;     ///< empty = checkpointing disabled
  bool resume = false;  ///< load compatible completed slots from the file
  int flush_every = 4;  ///< atomic rewrite cadence (newly completed slots)
  std::uint64_t salt = 0;  ///< extra driver-config digest material
};

/// Campaign-wide controls.
struct CampaignConfig {
  SimulatedChipConfig chip{};
  int chips = 5;           ///< chip instances per (assay, router) cell
  int runs_per_chip = 10;  ///< repeated executions per chip (reuse)
  std::uint64_t seed0 = 1; ///< chip i uses seed0 + i (identical across routers)
  /// Worker threads for the (cell, chip) grid; <= 0 means one per hardware
  /// thread. Every chip's seed depends only on its index, and results are
  /// reduced serially in grid order, so the output is identical at any
  /// job count (see docs/performance.md).
  int jobs = 1;
  CampaignCheckpoint checkpoint{};  ///< crash-safe slot persistence
};

/// Aggregated results of one (assay, router) cell. All execution outcomes
/// live in the shared core::RunRollup (the same accumulator the benches and
/// the HTML report consume).
struct CampaignCell {
  std::string assay;
  std::string router;
  core::RunRollup rollup;
  stats::RunningStats resyntheses;  ///< per-run distribution, all runs
};

/// Runs the full grid. Chips are seeded identically across routers, so the
/// comparison is paired.
std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config);

/// Prints the campaign as an aligned table (success rate ± CI over chips is
/// approximated by the binomial SE; cycles carry a t-based 95% CI).
void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells);

// Chaos campaigns --------------------------------------------------------
//
// A chaos campaign composes the three independent adversaries of the
// robustness evaluation — sensor noise (the scan chain lies), injected
// faults / pre-wear (the substrate is damaged), and an explicit degradation
// player (the substrate keeps getting damaged) — into one sweep, producing
// the Fig. 16-style success-vs-noise curves for each router.

/// One point on the sensor-noise axis.
struct ChaosLevel {
  std::string name;           ///< series label (e.g. "p=0.01")
  SensorNoiseConfig sensor{};
};

/// Which explicit degradation player (SMG player ②) to install.
enum class AdversaryKind { kNone, kRandom, kFrontier };

/// Chaos-campaign controls. The substrate configuration (faults, pre-wear)
/// comes from `chip`; its sensor field is overridden per level.
struct ChaosCampaignConfig {
  SimulatedChipConfig chip{};
  std::vector<ChaosLevel> levels;
  AdversaryKind adversary = AdversaryKind::kNone;
  AdversaryBudget adversary_budget{};
  int chips = 3;            ///< chip instances per cell
  int runs_per_chip = 5;    ///< repeated executions per chip (reuse)
  std::uint64_t seed0 = 1;  ///< chip i uses seed0 + i (paired across
                            ///< routers and levels: same substrate)
  /// Worker threads for the (cell, chip) grid; <= 0 means one per hardware
  /// thread. Per-chip seeding is index-derived and reduction is serial in
  /// grid order, so cells (and the CSV) are byte-identical at any job
  /// count (see docs/performance.md).
  int jobs = 1;
  CampaignCheckpoint checkpoint{};  ///< crash-safe slot persistence
};

/// Aggregated results of one (assay, level, router) cell.
struct ChaosCell {
  std::string assay;
  std::string router;
  std::string level;
  SensorNoiseConfig sensor{};
  core::RunRollup rollup;            ///< execution outcomes + ladder counters
  std::uint64_t frames_dropped = 0;  ///< summed over all chips
  std::uint64_t bits_flipped = 0;    ///< summed over all chips
  /// Strategy-library operation counts summed over the cell's per-chip
  /// libraries (per-digest-class hits/misses/inserts/overwrites/evictions;
  /// the `library.*` columns of the metrics CSV).
  core::LibraryStats library;
};

/// Runs the (assay × level × router) grid. Substrate seeds are identical
/// across levels and routers, so each curve is a paired comparison: the
/// same chips, differing only in sensing noise and router.
std::vector<ChaosCell> run_chaos_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers,
    const ChaosCampaignConfig& config);

/// Prints the chaos campaign as an aligned table.
void print_chaos_campaign(std::ostream& os,
                          const std::vector<ChaosCell>& cells);

/// Writes the cells to @p path as CSV: one row per cell with the noise
/// parameters, success rate, and every recovery-ladder counter.
void write_chaos_csv(const std::string& path,
                     const std::vector<ChaosCell>& cells);

/// Metrics roll-up CSV (--metrics): one row per grid cell with one
/// name-sorted column per metric derived from the cell's RunRollup (the
/// per-cell equivalent of the process-global obs metrics snapshot, which
/// cannot attribute counts to cells once the grid runs under --jobs).
void write_chaos_metrics_csv(const std::string& path,
                             const std::vector<ChaosCell>& cells);

}  // namespace meda::sim
