#include "sim/experiments.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace meda::sim {

std::vector<RunRecord> run_repeated(const assay::MoList& assay,
                                    const RepeatedRunsConfig& config) {
  MEDA_REQUIRE(config.runs >= 1, "need at least one run");
  Rng rng(config.seed);
  SimulatedChip chip(config.chip, rng.fork(0xC41));
  core::StrategyLibrary library;
  core::Scheduler scheduler(config.scheduler, &library);

  std::vector<RunRecord> records;
  records.reserve(static_cast<std::size_t>(config.runs));
  for (int i = 0; i < config.runs; ++i) {
    chip.clear_droplets();
    RunRecord record;
    record.stats = scheduler.run(chip, assay);
    record.success = record.stats.success;
    record.cycles = record.stats.cycles;
    records.push_back(std::move(record));
  }
  return records;
}

double probability_of_success(const std::vector<RunRecord>& records,
                              std::uint64_t kmax) {
  MEDA_REQUIRE(!records.empty(), "no run records");
  const auto ok = std::count_if(
      records.begin(), records.end(), [kmax](const RunRecord& r) {
        return r.success && r.cycles <= kmax;
      });
  return static_cast<double>(ok) / static_cast<double>(records.size());
}

TrialResult run_trial(const assay::MoList& assay, const TrialConfig& config) {
  MEDA_REQUIRE(config.successes_target >= 1, "need a positive target");
  Rng rng(config.seed);
  SimulatedChip chip(config.chip, rng.fork(0xF417));
  core::StrategyLibrary library;

  TrialResult result;
  while (result.successes < config.successes_target) {
    if (result.total_cycles >= config.kmax_total) {
      result.aborted = true;
      break;
    }
    // Cap each execution by the remaining trial budget.
    core::SchedulerConfig sched = config.scheduler;
    sched.max_cycles =
        std::min(sched.max_cycles, config.kmax_total - result.total_cycles);
    core::Scheduler scheduler(sched, &library);

    chip.clear_droplets();
    const core::ExecutionStats stats = scheduler.run(chip, assay);
    ++result.executions;
    result.total_cycles += stats.cycles;
    if (stats.success) {
      ++result.successes;
    } else if (result.first_failure_execution == 0) {
      result.first_failure_execution = result.executions;
    }
    if (!stats.success && result.total_cycles >= config.kmax_total) {
      result.aborted = true;
      break;
    }
    // A failed execution that did not exhaust the budget is retried (the
    // chip keeps degrading, so the trial will terminate).
    if (!stats.success && stats.cycles == 0) {
      // No progress is possible at all (e.g. dead dispense port): abort.
      result.aborted = true;
      break;
    }
  }
  return result;
}

std::size_t precompute_offline_library(
    core::StrategyLibrary& library, const assay::MoList& assay,
    const BiochipConfig& chip_config,
    const core::SchedulerConfig& scheduler) {
  SimulatedChipConfig twin;
  twin.chip = chip_config;  // pristine: no faults, no pre-wear
  // The twin's per-MC constants are irrelevant at zero actuations; any seed
  // yields a fully healthy chip.
  SimulatedChip chip(twin, Rng(0));
  core::Scheduler offline(scheduler, &library);
  const core::ExecutionStats stats = offline.run(chip, assay);
  MEDA_REQUIRE(stats.success,
               "offline precomputation failed: " + stats.failure_reason);
  return library.size();
}

}  // namespace meda::sim
