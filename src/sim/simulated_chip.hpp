#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chip/biochip.hpp"
#include "chip/fault_injection.hpp"
#include "chip/sensor_channel.hpp"
#include "core/biochip_io.hpp"
#include "model/guards.hpp"
#include "sim/adversary.hpp"
#include "util/rng.hpp"

/// @file simulated_chip.hpp
/// The MEDA biochip simulator of Section VII (Fig. 14): implements the
/// controller-facing BiochipIo against a Biochip substrate, resolving each
/// commanded action by sampling from the Section V-B outcome distributions
/// evaluated on the *true* degradation matrix D (the incomplete-information
/// side of the SMG — the controller only ever sees the quantized H).

namespace meda::sim {

/// Simulator configuration.
struct SimulatedChipConfig {
  BiochipConfig chip{};
  FaultInjectionConfig faults{};
  ActionRules rules{};  ///< action semantics (must match the controller's)
  /// Record the per-cycle Boolean actuation matrix (Section III-C study).
  bool record_actuation_trace = false;
  /// Record per-cycle droplet snapshots (positions after each step), for
  /// execution visualization and debugging.
  bool record_droplet_trace = false;
  /// Mid-life chip: every MC starts with U(0, pre_wear_max) prior
  /// actuations (heterogeneous wear from earlier bioassays on the reused
  /// chip). 0 = factory-fresh.
  std::uint64_t pre_wear_max = 0;
  /// Imperfections of the sensing path (Section III-B scan chain): every
  /// sense_health() is serialized through the scan chain and corrupted per
  /// this model. Default: a perfect channel (sense_health returns H).
  SensorNoiseConfig sensor{};
};

/// Simulated MEDA biochip.
class SimulatedChip : public core::BiochipIo {
 public:
  /// Builds the chip, samples per-MC degradation constants, and injects
  /// faults per the configuration.
  SimulatedChip(const SimulatedChipConfig& config, Rng rng);

  // BiochipIo ----------------------------------------------------------
  Rect bounds() const override { return chip_.bounds(); }
  int health_bits() const override { return chip_.health_bits(); }
  IntMatrix sense_health() const override;
  Rect droplet_position(core::DropletId id) const override;
  bool location_clear(const Rect& at) const override;
  core::DropletId dispense(const Rect& at) override;
  void discard(core::DropletId id) override;
  core::DropletId merge(core::DropletId a, core::DropletId b,
                        const Rect& merged) override;
  bool split_clear(core::DropletId id, const Rect& part0,
                   const Rect& part1) const override;
  std::pair<core::DropletId, core::DropletId> split(core::DropletId id,
                                                    const Rect& part0,
                                                    const Rect& part1) override;
  void step(const std::vector<core::Command>& commands) override;
  std::uint64_t cycle() const override { return cycle_; }

  // Simulator-side extras ------------------------------------------------
  /// The underlying substrate (true degradation state; full information).
  Biochip& substrate() { return chip_; }
  const Biochip& substrate() const { return chip_; }

  /// Locations of fault-injected MCs.
  const std::vector<Vec2i>& injected_faults() const { return faults_; }

  /// The sensing path (read statistics: frames dropped, bits flipped, ...).
  const SensorChannel& sensor_channel() const { return sensor_channel_; }

  /// Droplets currently on the chip.
  std::vector<std::pair<core::DropletId, Rect>> droplets() const;

  /// Per-cycle actuation patterns (only when record_actuation_trace).
  const std::vector<BoolMatrix>& actuation_trace() const { return trace_; }

  /// One recorded frame of droplet positions (post-step).
  using DropletSnapshot = std::vector<std::pair<core::DropletId, Rect>>;

  /// Per-cycle droplet snapshots (only when record_droplet_trace).
  const std::vector<DropletSnapshot>& droplet_trace() const {
    return droplet_trace_;
  }

  /// Moves blocked this run because they would have brought two droplets
  /// into unintended contact.
  std::uint64_t blocked_moves() const { return blocked_moves_; }

  /// Removes every droplet from the chip (between repeated executions of a
  /// bioassay on the same — persistently degraded — chip).
  void clear_droplets() { droplets_.clear(); }

  /// Installs an explicit degradation-player strategy (SMG player ②); it is
  /// invoked after every operational cycle. Pass nullptr to remove it (the
  /// default: degradation resolves purely through actuation wear + injected
  /// faults).
  void set_adversary(std::unique_ptr<DegradationAdversary> adversary) {
    adversary_ = std::move(adversary);
  }

 private:
  /// True relative EWOD force of MC (x, y): D², or 0 for tripped faults.
  double true_force(int x, int y) const;

  /// True if placing @p candidate for @p id violates the 1-cell separation
  /// against every other droplet except @p partner (overlap is forbidden
  /// even against the partner — merging is an explicit merge() call).
  bool placement_blocked(core::DropletId id, const Rect& candidate,
                         core::DropletId partner) const;

  SimulatedChipConfig config_;
  Biochip chip_;
  Rng rng_;
  // Sensing path state (mutable: sense_health() is observationally const to
  // the controller but advances the channel's noise process).
  mutable SensorChannel sensor_channel_;
  mutable Rng sensor_rng_{0};
  std::vector<Vec2i> faults_;
  std::unordered_map<core::DropletId, Rect> droplets_;
  core::DropletId next_id_ = 0;
  std::uint64_t cycle_ = 0;
  std::uint64_t blocked_moves_ = 0;
  std::vector<BoolMatrix> trace_;
  std::vector<DropletSnapshot> droplet_trace_;
  std::unique_ptr<DegradationAdversary> adversary_;
};

/// Renders one droplet snapshot as an ASCII frame of the chip: droplets are
/// drawn with letters (by id), dead MCs (health 0) as '#', worn MCs
/// (health 1) as '.', healthy MCs as ' '.
std::string render_frame(const SimulatedChip& chip,
                         const SimulatedChip::DropletSnapshot& snapshot);

}  // namespace meda::sim
