#include "sim/simulated_chip.hpp"

#include <algorithm>

#include "model/actuation.hpp"
#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::sim {

SimulatedChip::SimulatedChip(const SimulatedChipConfig& config, Rng rng)
    : config_(config), chip_(config.chip, rng), rng_(std::move(rng)) {
  faults_ = inject_faults(chip_, config.faults, rng_);
  if (config.pre_wear_max > 0) {
    for (int y = 0; y < chip_.height(); ++y)
      for (int x = 0; x < chip_.width(); ++x)
        chip_.mc(x, y).actuate_n(static_cast<std::uint64_t>(
            rng_.uniform_int(0, static_cast<int>(config.pre_wear_max))));
  }
  // Only fork the sensing RNG when noise is configured: a perfect channel
  // must leave rng_'s stream — and hence every downstream outcome sample of
  // existing fixed-seed experiments — untouched.
  if (config.sensor.enabled()) {
    sensor_rng_ = rng_.fork(0x5E45);
    sensor_channel_ =
        SensorChannel(config.sensor, chip_.width(), chip_.height(),
                      chip_.health_bits(), rng_.fork(0x5746));
  }
}

IntMatrix SimulatedChip::sense_health() const {
  if (!config_.sensor.enabled()) return chip_.health_matrix();
  return sensor_channel_.read(chip_.health_matrix(), sensor_rng_);
}

Rect SimulatedChip::droplet_position(core::DropletId id) const {
  const auto it = droplets_.find(id);
  MEDA_REQUIRE(it != droplets_.end(), "unknown droplet id");
  return it->second;
}

bool SimulatedChip::location_clear(const Rect& at) const {
  return chip_.in_bounds(at) && !placement_blocked(-1, at, -1);
}

core::DropletId SimulatedChip::dispense(const Rect& at) {
  MEDA_REQUIRE(chip_.in_bounds(at), "dispensed droplet must be on the chip");
  const Rect b = chip_.bounds();
  MEDA_REQUIRE(at.xa == b.xa || at.xb == b.xb || at.ya == b.ya ||
                   at.yb == b.yb,
               "dispensed droplet must touch a chip edge");
  MEDA_REQUIRE(!placement_blocked(-1, at, -1),
               "dispense location conflicts with an on-chip droplet");
  const core::DropletId id = next_id_++;
  droplets_.emplace(id, at);
  return id;
}

void SimulatedChip::discard(core::DropletId id) {
  MEDA_REQUIRE(droplets_.erase(id) == 1, "unknown droplet id");
}

core::DropletId SimulatedChip::merge(core::DropletId a, core::DropletId b,
                                     const Rect& merged) {
  MEDA_REQUIRE(a != b, "cannot merge a droplet with itself");
  const Rect pa = droplet_position(a);
  const Rect pb = droplet_position(b);
  MEDA_REQUIRE(pa.manhattan_gap(pb) <= 1,
               "droplets must be in contact to merge");
  MEDA_REQUIRE(chip_.in_bounds(merged), "merged droplet must be on the chip");
  droplets_.erase(a);
  droplets_.erase(b);
  MEDA_REQUIRE(!placement_blocked(-1, merged, -1),
               "merged droplet conflicts with an on-chip droplet");
  const core::DropletId id = next_id_++;
  droplets_.emplace(id, merged);
  return id;
}

bool SimulatedChip::split_clear(core::DropletId id, const Rect& part0,
                                const Rect& part1) const {
  (void)droplet_position(id);  // validates existence
  return chip_.in_bounds(part0) && chip_.in_bounds(part1) &&
         !part0.intersects(part1) && !placement_blocked(id, part0, -1) &&
         !placement_blocked(id, part1, -1);
}

std::pair<core::DropletId, core::DropletId> SimulatedChip::split(
    core::DropletId id, const Rect& part0, const Rect& part1) {
  MEDA_REQUIRE(split_clear(id, part0, part1),
               "split parts off-chip, overlapping, or conflicting with an "
               "on-chip droplet");
  droplets_.erase(id);
  const core::DropletId id0 = next_id_++;
  const core::DropletId id1 = next_id_++;
  droplets_.emplace(id0, part0);
  droplets_.emplace(id1, part1);
  return {id0, id1};
}

double SimulatedChip::true_force(int x, int y) const {
  return chip_.mc(x, y).relative_force();
}

bool SimulatedChip::placement_blocked(core::DropletId id,
                                      const Rect& candidate,
                                      core::DropletId partner) const {
  for (const auto& [other_id, other_pos] : droplets_) {
    if (other_id == id) continue;
    const int gap = candidate.manhattan_gap(other_pos);
    if (other_id == partner) {
      if (gap < 1) return true;  // partners may touch but not overlap
    } else if (gap < 2) {
      // Unrelated droplets in contact would merge; MEDA keeps at least one
      // free cell between them.
      return true;
    }
  }
  return false;
}

void SimulatedChip::step(const std::vector<core::Command>& commands) {
  // Which droplets received a command this cycle.
  std::unordered_map<core::DropletId, const core::Command*> commanded;
  for (const core::Command& cmd : commands) {
    MEDA_REQUIRE(droplets_.contains(cmd.droplet),
                 "command for an unknown droplet");
    MEDA_REQUIRE(!commanded.contains(cmd.droplet),
                 "duplicate command for a droplet");
    commanded.emplace(cmd.droplet, &cmd);
  }

  const ForceFn force = [this](int x, int y) { return true_force(x, y); };

  // Resolve droplets in id order for determinism.
  std::vector<core::DropletId> order;
  order.reserve(droplets_.size());
  for (const auto& [id, pos] : droplets_) order.push_back(id);
  std::sort(order.begin(), order.end());

  // Phase 1 — all droplets actuate simultaneously: sample every commanded
  // droplet's outcome against the pre-step positions.
  std::vector<DropletCommand> cycle_pattern;
  cycle_pattern.reserve(order.size());
  std::vector<Rect> old_pos(order.size());
  std::vector<Rect> proposed(order.size());
  std::vector<core::DropletId> partner(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Rect pos = droplets_.at(order[i]);
    old_pos[i] = pos;
    proposed[i] = pos;
    const auto it = commanded.find(order[i]);
    if (it != commanded.end() && it->second->action.has_value()) {
      const core::Command& cmd = *it->second;
      const Action a = *cmd.action;
      MEDA_REQUIRE(action_enabled(a, pos, config_.rules, chip_.bounds()),
                   "commanded action is not enabled");
      partner[i] = cmd.merge_partner;
      // The shifted-in pattern is the target a(δ) regardless of outcome.
      cycle_pattern.emplace_back(pos, a);
      const std::vector<Outcome> outcomes = action_outcomes(pos, a, force);
      std::vector<double> weights(outcomes.size());
      for (std::size_t k = 0; k < outcomes.size(); ++k)
        weights[k] = outcomes[k].probability;
      proposed[i] = outcomes[rng_.categorical(weights)].droplet;
    } else {
      cycle_pattern.emplace_back(pos, std::nullopt);  // held
    }
  }
  const std::vector<Rect> sampled = proposed;

  // Phase 2 — settle conflicts: a move that would bring two droplets into
  // unintended contact is physically a (catastrophic) merge; the simulator
  // blocks it and counts the event. Reverting one droplet can expose new
  // conflicts, so iterate until the configuration is consistent (the
  // pre-step configuration is a fixed point, so this terminates).
  const auto pair_ok = [&](std::size_t i, std::size_t j) {
    const int gap = proposed[i].manhattan_gap(proposed[j]);
    const bool partners =
        partner[i] == order[j] || partner[j] == order[i];
    return partners ? gap >= 1 : gap >= 2;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (proposed[i] == old_pos[i]) continue;
      for (std::size_t j = 0; j < order.size(); ++j) {
        if (j == i || pair_ok(i, j)) continue;
        proposed[i] = old_pos[i];  // blocked: hold in place
        changed = true;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    // A droplet whose sampled outcome moved but which was reverted during
    // settlement was genuinely blocked (ε outcomes never revert).
    if (sampled[i] != old_pos[i] && proposed[i] == old_pos[i])
      ++blocked_moves_;
    droplets_.at(order[i]) = proposed[i];
  }

  const BoolMatrix pattern =
      build_actuation_matrix(chip_.width(), chip_.height(), cycle_pattern);
  chip_.actuate(pattern);
  if (adversary_ != nullptr) adversary_->act(chip_, droplets(), rng_);
  if (config_.record_actuation_trace) trace_.push_back(pattern);
  if (config_.record_droplet_trace) droplet_trace_.push_back(droplets());
  ++cycle_;
}

std::string render_frame(const SimulatedChip& chip,
                         const SimulatedChip::DropletSnapshot& snapshot) {
  const Biochip& substrate = chip.substrate();
  const IntMatrix health = substrate.health_matrix();
  std::string out;
  out.reserve(static_cast<std::size_t>((substrate.width() + 3) *
                                       (substrate.height() + 2)));
  const auto border = [&] {
    out.push_back('+');
    out.append(static_cast<std::size_t>(substrate.width()), '-');
    out.append("+\n");
  };
  border();
  for (int y = substrate.height() - 1; y >= 0; --y) {
    out.push_back('|');
    for (int x = 0; x < substrate.width(); ++x) {
      char glyph = ' ';
      if (health(x, y) == 0) glyph = '#';
      else if (health(x, y) == 1) glyph = '.';
      for (const auto& [id, pos] : snapshot) {
        if (pos.contains(x, y)) {
          glyph = static_cast<char>('A' + id % 26);
          break;
        }
      }
      out.push_back(glyph);
    }
    out.append("|\n");
  }
  border();
  return out;
}

std::vector<std::pair<core::DropletId, Rect>> SimulatedChip::droplets() const {
  std::vector<std::pair<core::DropletId, Rect>> out(droplets_.begin(),
                                                    droplets_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace meda::sim
