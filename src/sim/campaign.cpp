#include "sim/campaign.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "core/library.hpp"
#include "obs/obs.hpp"
#include "sim/experiments.hpp"
#include "util/check.hpp"
#include "util/checkpoint.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace meda::sim {

namespace {

// Checkpoint payload codec. A slot serializes exactly the ExecutionStats
// subset the reductions consume (RunRollup::absorb inputs plus the chaos
// channel tallies); synthesis_seconds round-trips exactly via the C99 %a
// hexfloat form so a resumed campaign reproduces the straight-through CSV
// byte for byte.

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

void encode_stats(std::ostream& os, const core::ExecutionStats& s) {
  const core::RecoveryCounters& r = s.recovery;
  const core::ReplicaCounters& n = s.replica;
  os << (s.success ? 1 : 0) << ' ' << s.cycles << ' ' << s.completed_mos
     << ' ' << s.aborted_mos << ' ' << s.synthesis_calls << ' '
     << s.library_hits << ' ' << s.resyntheses << ' ' << s.resyntheses_warm
     << ' ' << hex_double(s.synthesis_seconds) << ' ' << r.watchdog_fires << ' '
     << r.forced_resenses << ' ' << r.synthesis_retries << ' '
     << r.backoff_cycles << ' ' << r.quarantined_cells << ' '
     << r.contention_detours << ' ' << r.aborted_jobs << ' '
     << r.synthesis_deadlines << ' ' << r.fallback_routes << ' '
     << r.paroled_cells << ' ' << n.launched << ' ' << n.failovers << ' '
     << n.merges << ' ' << n.retired << ' ' << n.best_effort_masks << ' '
     << n.droplet_cycles;
}

bool decode_stats(std::istream& is, core::ExecutionStats& s) {
  int success = 0;
  std::string seconds;
  core::RecoveryCounters& r = s.recovery;
  core::ReplicaCounters& n = s.replica;
  if (!(is >> success >> s.cycles >> s.completed_mos >> s.aborted_mos >>
        s.synthesis_calls >> s.library_hits >> s.resyntheses >>
        s.resyntheses_warm >> seconds >>
        r.watchdog_fires >> r.forced_resenses >> r.synthesis_retries >>
        r.backoff_cycles >> r.quarantined_cells >> r.contention_detours >>
        r.aborted_jobs >> r.synthesis_deadlines >> r.fallback_routes >>
        r.paroled_cells >> n.launched >> n.failovers >> n.merges >>
        n.retired >> n.best_effort_masks >> n.droplet_cycles))
    return false;
  s.success = success != 0;
  char* end = nullptr;
  s.synthesis_seconds = std::strtod(seconds.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string encode_run_records(const std::vector<RunRecord>& records) {
  std::ostringstream os;
  os << records.size();
  for (const RunRecord& record : records) {
    os << ' ';
    encode_stats(os, record.stats);
  }
  return os.str();
}

bool decode_run_records(const std::string& payload,
                        std::vector<RunRecord>& out) {
  std::istringstream is(payload);
  std::size_t n = 0;
  if (!(is >> n) || n > 1u << 20) return false;
  std::vector<RunRecord> records(n);
  for (RunRecord& record : records) {
    if (!decode_stats(is, record.stats)) return false;
    record.success = record.stats.success;
    record.cycles = record.stats.cycles;
  }
  out = std::move(records);
  return true;
}

}  // namespace

// Both campaigns share the same parallel structure: the (cell, chip) grid
// is flattened into independent tasks, each task derives everything random
// from the chip index alone (seed0 + chip_idx) and writes into its own
// preallocated slot, and the slots are reduced serially in the original
// grid order afterwards. Because no floating-point accumulation happens
// concurrently and no seed depends on execution order, the cells — and any
// CSV written from them — are byte-identical at every job count, including
// the serial jobs = 1 path.

std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty(),
               "campaign needs at least one assay and one router");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "campaign needs positive chip/run counts");
  std::vector<CampaignCell> cells(assays.size() * routers.size());
  for (std::size_t a = 0; a < assays.size(); ++a) {
    for (std::size_t r = 0; r < routers.size(); ++r) {
      CampaignCell& cell = cells[a * routers.size() + r];
      cell.assay = assays[a].name;
      cell.router = routers[r].name;
    }
  }

  const std::size_t chips = static_cast<std::size_t>(config.chips);
  std::vector<std::vector<RunRecord>> slots(cells.size() * chips);
  util::SlotCheckpoint checkpoint;
  if (!config.checkpoint.path.empty()) {
    util::DigestBuilder digest;
    // v3: the replica counters joined the encode_stats payload,
    // invalidating checkpoints written by older binaries.
    digest.mix(std::string("meda-campaign-v3"));
    digest.mix(config.seed0).mix(config.chips).mix(config.runs_per_chip);
    digest.mix(config.checkpoint.salt);
    digest.mix(static_cast<std::uint64_t>(assays.size()));
    for (const assay::MoList& assay_list : assays) digest.mix(assay_list.name);
    digest.mix(static_cast<std::uint64_t>(routers.size()));
    for (const RouterConfig& router : routers) digest.mix(router.name);
    checkpoint.open(config.checkpoint.path, digest.value(),
                    config.checkpoint.resume, slots.size(),
                    config.checkpoint.flush_every);
  }
  util::parallel_for(config.jobs, slots.size(), [&](std::size_t t) {
    if (const std::string* payload = checkpoint.restored(t))
      if (decode_run_records(*payload, slots[t])) return;
    const std::size_t cell_idx = t / chips;
    const int chip_idx = static_cast<int>(t % chips);
    const assay::MoList& assay_list = assays[cell_idx / routers.size()];
    const RouterConfig& router = routers[cell_idx % routers.size()];
    MEDA_OBS_SPAN(chip_span, "campaign", "chip");
    chip_span.arg("assay", assay_list.name);
    chip_span.arg("router", router.name);
    chip_span.arg("chip", static_cast<std::int64_t>(chip_idx));
    RepeatedRunsConfig runs_config;
    runs_config.chip = config.chip;
    runs_config.scheduler = router.scheduler;
    runs_config.runs = config.runs_per_chip;
    runs_config.seed = config.seed0 + static_cast<std::uint64_t>(chip_idx);
    slots[t] = run_repeated(assay_list, runs_config);
    if (checkpoint.active())
      checkpoint.record(t, encode_run_records(slots[t]));
  });
  checkpoint.flush();

  for (std::size_t cell_idx = 0; cell_idx < cells.size(); ++cell_idx) {
    CampaignCell& cell = cells[cell_idx];
    MEDA_OBS_SPAN(cell_span, "campaign", "cell");
    for (std::size_t chip_idx = 0; chip_idx < chips; ++chip_idx) {
      for (const RunRecord& record : slots[cell_idx * chips + chip_idx]) {
        cell.rollup.absorb(record.stats);
        cell.resyntheses.add(record.stats.resyntheses);
      }
    }
    cell_span.arg("assay", cell.assay);
    cell_span.arg("router", cell.router);
    cell_span.arg("runs", static_cast<std::int64_t>(cell.rollup.runs));
    cell_span.arg("successes",
                  static_cast<std::int64_t>(cell.rollup.successes));
  }
  return cells;
}

void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells) {
  Table table({"bioassay", "router", "success rate (± SE)",
               "cycles (± 95% CI)", "mean re-syntheses/run"});
  for (const CampaignCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    const double p = r.success_rate();
    const double se =
        r.runs > 0 ? std::sqrt(p * (1.0 - p) / r.runs) : 0.0;
    table.add_row(
        {cell.assay, cell.router,
         fmt_prob(p) + " ± " + fmt_prob(se),
         r.cycles.count() > 0
             ? fmt_double(r.cycles.mean(), 1) + " ± " +
                   fmt_double(r.cycles.ci95_halfwidth(), 1)
             : "-",
         fmt_double(cell.resyntheses.count() ? cell.resyntheses.mean() : 0.0,
                    1)});
  }
  table.print(os);
}

namespace {

std::unique_ptr<DegradationAdversary> make_adversary(
    AdversaryKind kind, const AdversaryBudget& budget) {
  switch (kind) {
    case AdversaryKind::kNone: return nullptr;
    case AdversaryKind::kRandom:
      return std::make_unique<RandomAdversary>(budget);
    case AdversaryKind::kFrontier:
      return std::make_unique<FrontierAdversary>(budget);
  }
  return nullptr;
}

/// One (cell, chip) task's output: per-run stats in execution order plus
/// the chip's sensing-channel tallies.
struct ChaosChipSlot {
  std::vector<core::ExecutionStats> stats;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bits_flipped = 0;
  core::LibraryStats library;  ///< the chip's private library, after all runs
};

void encode_library_class(std::ostream& os, const core::LibraryClassStats& s) {
  os << s.hits << ' ' << s.misses << ' ' << s.inserts << ' ' << s.overwrites
     << ' ' << s.evictions;
}

bool decode_library_class(std::istream& is, core::LibraryClassStats& s) {
  return static_cast<bool>(is >> s.hits >> s.misses >> s.inserts >>
                           s.overwrites >> s.evictions);
}

std::string encode_chaos_slot(const ChaosChipSlot& slot) {
  std::ostringstream os;
  os << slot.frames_dropped << ' ' << slot.bits_flipped << ' ';
  encode_library_class(os, slot.library.plain);
  os << ' ';
  encode_library_class(os, slot.library.detour);
  os << ' ';
  encode_library_class(os, slot.library.replica);
  os << ' ' << slot.stats.size();
  for (const core::ExecutionStats& stats : slot.stats) {
    os << ' ';
    encode_stats(os, stats);
  }
  return os.str();
}

bool decode_chaos_slot(const std::string& payload, ChaosChipSlot& out) {
  std::istringstream is(payload);
  ChaosChipSlot slot;
  std::size_t n = 0;
  if (!(is >> slot.frames_dropped >> slot.bits_flipped)) return false;
  if (!decode_library_class(is, slot.library.plain)) return false;
  if (!decode_library_class(is, slot.library.detour)) return false;
  if (!decode_library_class(is, slot.library.replica)) return false;
  if (!(is >> n) || n > 1u << 20) return false;
  slot.stats.resize(n);
  for (core::ExecutionStats& stats : slot.stats)
    if (!decode_stats(is, stats)) return false;
  out = std::move(slot);
  return true;
}

}  // namespace

std::vector<ChaosCell> run_chaos_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers,
    const ChaosCampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty() && !config.levels.empty(),
               "chaos campaign needs an assay, a router, and a level");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "chaos campaign needs positive chip/run counts");
  const std::size_t n_routers = routers.size();
  const std::size_t n_levels = config.levels.size();
  std::vector<ChaosCell> cells(assays.size() * n_levels * n_routers);
  for (std::size_t a = 0; a < assays.size(); ++a) {
    for (std::size_t l = 0; l < n_levels; ++l) {
      for (std::size_t r = 0; r < n_routers; ++r) {
        ChaosCell& cell = cells[(a * n_levels + l) * n_routers + r];
        cell.assay = assays[a].name;
        cell.router = routers[r].name;
        cell.level = config.levels[l].name;
        cell.sensor = config.levels[l].sensor;
      }
    }
  }

  const std::size_t chips = static_cast<std::size_t>(config.chips);
  std::vector<ChaosChipSlot> slots(cells.size() * chips);
  util::SlotCheckpoint checkpoint;
  if (!config.checkpoint.path.empty()) {
    util::DigestBuilder digest;
    // v2: slot payloads gained the per-class library stats block.
    // v3: resyntheses_warm joined the encode_stats payload.
    // v4: the replica counters joined encode_stats and the replica library
    //     class joined the slot's library block.
    digest.mix(std::string("meda-chaos-v4"));
    digest.mix(config.seed0).mix(config.chips).mix(config.runs_per_chip);
    digest.mix(config.checkpoint.salt);
    digest.mix(static_cast<int>(config.adversary));
    digest.mix(static_cast<std::uint64_t>(assays.size()));
    for (const assay::MoList& assay_list : assays) digest.mix(assay_list.name);
    digest.mix(static_cast<std::uint64_t>(routers.size()));
    for (const RouterConfig& router : routers) digest.mix(router.name);
    digest.mix(static_cast<std::uint64_t>(config.levels.size()));
    for (const ChaosLevel& level : config.levels) {
      digest.mix(level.name);
      digest.mix(level.sensor.bit_flip_p);
      digest.mix(level.sensor.stuck_fraction);
      digest.mix(level.sensor.frame_drop_p);
    }
    checkpoint.open(config.checkpoint.path, digest.value(),
                    config.checkpoint.resume, slots.size(),
                    config.checkpoint.flush_every);
  }
  util::parallel_for(config.jobs, slots.size(), [&](std::size_t t) {
    if (const std::string* payload = checkpoint.restored(t))
      if (decode_chaos_slot(*payload, slots[t])) return;
    const std::size_t cell_idx = t / chips;
    const int chip_idx = static_cast<int>(t % chips);
    const ChaosCell& cell = cells[cell_idx];
    const assay::MoList& assay_list =
        assays[cell_idx / (n_levels * n_routers)];
    const RouterConfig& router = routers[cell_idx % n_routers];
    // The substrate seed depends only on chip_idx: the same chip (same
    // degradation constants, same injected faults) underlies every
    // level and router — only the sensing channel differs.
    Rng rng(config.seed0 + static_cast<std::uint64_t>(chip_idx));
    SimulatedChipConfig chip_config = config.chip;
    chip_config.sensor = cell.sensor;
    SimulatedChip chip(chip_config, rng.fork(0xC41));
    chip.set_adversary(
        make_adversary(config.adversary, config.adversary_budget));
    core::StrategyLibrary library;
    core::Scheduler scheduler(router.scheduler, &library);
    ChaosChipSlot& slot = slots[t];
    slot.stats.reserve(static_cast<std::size_t>(config.runs_per_chip));
    for (int run = 0; run < config.runs_per_chip; ++run) {
      MEDA_OBS_SPAN(trial_span, "campaign", "trial");
      chip.clear_droplets();
      const core::ExecutionStats stats = scheduler.run(chip, assay_list);
      trial_span.arg("assay", cell.assay);
      trial_span.arg("router", cell.router);
      trial_span.arg("level", cell.level);
      trial_span.arg("chip", static_cast<std::int64_t>(chip_idx));
      trial_span.arg("run", static_cast<std::int64_t>(run));
      trial_span.arg("success",
                     static_cast<std::int64_t>(stats.success ? 1 : 0));
      trial_span.arg("cycles", static_cast<std::int64_t>(stats.cycles));
      slot.stats.push_back(stats);
    }
    slot.frames_dropped = chip.sensor_channel().frames_dropped();
    slot.bits_flipped = chip.sensor_channel().bits_flipped();
    slot.library = library.stats();
    if (checkpoint.active()) checkpoint.record(t, encode_chaos_slot(slot));
  });
  checkpoint.flush();

  for (std::size_t cell_idx = 0; cell_idx < cells.size(); ++cell_idx) {
    ChaosCell& cell = cells[cell_idx];
    for (std::size_t chip_idx = 0; chip_idx < chips; ++chip_idx) {
      const ChaosChipSlot& slot = slots[cell_idx * chips + chip_idx];
      for (const core::ExecutionStats& stats : slot.stats)
        cell.rollup.absorb(stats);
      cell.frames_dropped += slot.frames_dropped;
      cell.bits_flipped += slot.bits_flipped;
      cell.library += slot.library;
    }
  }
  return cells;
}

void print_chaos_campaign(std::ostream& os,
                          const std::vector<ChaosCell>& cells) {
  Table table({"bioassay", "noise", "router", "success", "cycles",
               "watchdog", "retries", "quarantined", "detours", "replicas",
               "failovers", "aborted"});
  for (const ChaosCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    table.add_row(
        {cell.assay, cell.level, cell.router,
         std::to_string(r.successes) + "/" + std::to_string(r.runs),
         r.cycles.count() > 0 ? fmt_double(r.cycles.mean(), 1) : "-",
         std::to_string(r.recovery.watchdog_fires),
         std::to_string(r.recovery.synthesis_retries),
         std::to_string(r.recovery.quarantined_cells),
         std::to_string(r.recovery.contention_detours),
         std::to_string(r.replica.launched),
         std::to_string(r.replica.failovers),
         std::to_string(r.recovery.aborted_jobs)});
  }
  table.print(os);
}

void write_chaos_csv(const std::string& path,
                     const std::vector<ChaosCell>& cells) {
  CsvWriter csv(path,
                {"assay", "router", "level", "bit_flip_p", "stuck_fraction",
                 "frame_drop_p", "runs", "successes", "success_rate",
                 "mean_cycles", "watchdog_fires", "forced_resenses",
                 "synthesis_retries", "backoff_cycles", "quarantined_cells",
                 "contention_detours", "aborted_jobs", "synthesis_deadlines",
                 "fallback_routes", "paroled_cells", "frames_dropped",
                 "bits_flipped", "synthesis_calls", "replicas_launched",
                 "replica_failovers", "replica_merges", "replica_retired",
                 "replica_best_effort_masks", "replica_droplet_cycles"});
  for (const ChaosCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    csv.write_row(
        {cell.assay, cell.router, cell.level,
         fmt_double(cell.sensor.bit_flip_p, 6),
         fmt_double(cell.sensor.stuck_fraction, 6),
         fmt_double(cell.sensor.frame_drop_p, 6),
         std::to_string(r.runs), std::to_string(r.successes),
         fmt_double(r.success_rate(), 4),
         r.cycles.count() > 0 ? fmt_double(r.cycles.mean(), 2) : "",
         std::to_string(r.recovery.watchdog_fires),
         std::to_string(r.recovery.forced_resenses),
         std::to_string(r.recovery.synthesis_retries),
         std::to_string(r.recovery.backoff_cycles),
         std::to_string(r.recovery.quarantined_cells),
         std::to_string(r.recovery.contention_detours),
         std::to_string(r.recovery.aborted_jobs),
         std::to_string(r.recovery.synthesis_deadlines),
         std::to_string(r.recovery.fallback_routes),
         std::to_string(r.recovery.paroled_cells),
         std::to_string(cell.frames_dropped),
         std::to_string(cell.bits_flipped),
         std::to_string(r.synthesis_calls),
         std::to_string(r.replica.launched),
         std::to_string(r.replica.failovers),
         std::to_string(r.replica.merges),
         std::to_string(r.replica.retired),
         std::to_string(r.replica.best_effort_masks),
         std::to_string(r.replica.droplet_cycles)});
  }
}

void write_chaos_metrics_csv(const std::string& path,
                             const std::vector<ChaosCell>& cells) {
  // One named extractor per metric, listed in column (name-sorted) order so
  // downstream diffing tools see a stable schema as metrics are added.
  struct Metric {
    const char* name;
    std::string (*value)(const ChaosCell&);
  };
  static constexpr Metric kMetrics[] = {
      {"chaos.bits_flipped",
       [](const ChaosCell& c) { return std::to_string(c.bits_flipped); }},
      {"chaos.frames_dropped",
       [](const ChaosCell& c) { return std::to_string(c.frames_dropped); }},
      // library_stats block: per-digest-class strategy-library operation
      // counts summed over the cell's per-chip libraries.
      {"library.detour.evictions",
       [](const ChaosCell& c) {
         return std::to_string(c.library.detour.evictions);
       }},
      {"library.detour.hits",
       [](const ChaosCell& c) {
         return std::to_string(c.library.detour.hits);
       }},
      {"library.detour.inserts",
       [](const ChaosCell& c) {
         return std::to_string(c.library.detour.inserts);
       }},
      {"library.detour.misses",
       [](const ChaosCell& c) {
         return std::to_string(c.library.detour.misses);
       }},
      {"library.detour.overwrites",
       [](const ChaosCell& c) {
         return std::to_string(c.library.detour.overwrites);
       }},
      {"library.plain.evictions",
       [](const ChaosCell& c) {
         return std::to_string(c.library.plain.evictions);
       }},
      {"library.plain.hits",
       [](const ChaosCell& c) {
         return std::to_string(c.library.plain.hits);
       }},
      {"library.plain.inserts",
       [](const ChaosCell& c) {
         return std::to_string(c.library.plain.inserts);
       }},
      {"library.plain.misses",
       [](const ChaosCell& c) {
         return std::to_string(c.library.plain.misses);
       }},
      {"library.plain.overwrites",
       [](const ChaosCell& c) {
         return std::to_string(c.library.plain.overwrites);
       }},
      {"library.replica.evictions",
       [](const ChaosCell& c) {
         return std::to_string(c.library.replica.evictions);
       }},
      {"library.replica.hits",
       [](const ChaosCell& c) {
         return std::to_string(c.library.replica.hits);
       }},
      {"library.replica.inserts",
       [](const ChaosCell& c) {
         return std::to_string(c.library.replica.inserts);
       }},
      {"library.replica.misses",
       [](const ChaosCell& c) {
         return std::to_string(c.library.replica.misses);
       }},
      {"library.replica.overwrites",
       [](const ChaosCell& c) {
         return std::to_string(c.library.replica.overwrites);
       }},
      {"recovery.aborted_jobs",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.aborted_jobs);
       }},
      {"recovery.backoff_cycles",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.backoff_cycles);
       }},
      {"recovery.contention_detours",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.contention_detours);
       }},
      {"recovery.fallback_routes",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.fallback_routes);
       }},
      {"recovery.forced_resenses",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.forced_resenses);
       }},
      {"recovery.paroled_cells",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.paroled_cells);
       }},
      {"recovery.quarantined_cells",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.quarantined_cells);
       }},
      {"recovery.synthesis_deadlines",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.synthesis_deadlines);
       }},
      {"recovery.synthesis_retries",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.synthesis_retries);
       }},
      {"recovery.watchdog_fires",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.recovery.watchdog_fires);
       }},
      // replica block: the N-modular-redundancy machinery, all zero unless
      // a router replicates critical dispenses.
      {"replica.best_effort_masks",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.best_effort_masks);
       }},
      {"replica.droplet_cycles",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.droplet_cycles);
       }},
      {"replica.failovers",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.failovers);
       }},
      {"replica.launched",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.launched);
       }},
      {"replica.merges",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.merges);
       }},
      {"replica.retired",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.replica.retired);
       }},
      {"sched.aborted_mos",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.aborted_mos);
       }},
      {"sched.completed_mos",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.completed_mos);
       }},
      {"sched.library_hit_rate",
       [](const ChaosCell& c) {
         return fmt_double(c.rollup.library_hit_rate(), 4);
       }},
      {"sched.library_hits",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.library_hits);
       }},
      {"sched.mean_cycles",
       [](const ChaosCell& c) {
         return c.rollup.cycles.count() > 0
                    ? fmt_double(c.rollup.cycles.mean(), 2)
                    : std::string();
       }},
      {"sched.resyntheses",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.resyntheses);
       }},
      {"sched.resyntheses_warm",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.resyntheses_warm);
       }},
      {"sched.runs",
       [](const ChaosCell& c) { return std::to_string(c.rollup.runs); }},
      {"sched.success_rate",
       [](const ChaosCell& c) {
         return fmt_double(c.rollup.success_rate(), 4);
       }},
      {"sched.successes",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.successes);
       }},
      {"sched.synthesis_calls",
       [](const ChaosCell& c) {
         return std::to_string(c.rollup.synthesis_calls);
       }},
  };
  std::vector<std::string> header{"assay", "router", "level"};
  for (const Metric& metric : kMetrics) header.push_back(metric.name);
  CsvWriter csv(path, header);
  for (const ChaosCell& cell : cells) {
    std::vector<std::string> row{cell.assay, cell.router, cell.level};
    for (const Metric& metric : kMetrics) row.push_back(metric.value(cell));
    csv.write_row(row);
  }
}

}  // namespace meda::sim
