#include "sim/campaign.hpp"

#include <cmath>
#include <ostream>

#include "core/library.hpp"
#include "sim/experiments.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace meda::sim {

std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty(),
               "campaign needs at least one assay and one router");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "campaign needs positive chip/run counts");
  std::vector<CampaignCell> cells;
  for (const assay::MoList& assay_list : assays) {
    for (const RouterConfig& router : routers) {
      CampaignCell cell;
      cell.assay = assay_list.name;
      cell.router = router.name;
      for (int chip_idx = 0; chip_idx < config.chips; ++chip_idx) {
        RepeatedRunsConfig runs_config;
        runs_config.chip = config.chip;
        runs_config.scheduler = router.scheduler;
        runs_config.runs = config.runs_per_chip;
        runs_config.seed =
            config.seed0 + static_cast<std::uint64_t>(chip_idx);
        for (const RunRecord& record :
             run_repeated(assay_list, runs_config)) {
          ++cell.runs;
          cell.resyntheses.add(record.stats.resyntheses);
          if (record.success) {
            ++cell.successes;
            cell.cycles.add(static_cast<double>(record.cycles));
          }
        }
      }
      cell.success_rate =
          static_cast<double>(cell.successes) / cell.runs;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells) {
  Table table({"bioassay", "router", "success rate (± SE)",
               "cycles (± 95% CI)", "mean re-syntheses/run"});
  for (const CampaignCell& cell : cells) {
    const double p = cell.success_rate;
    const double se =
        cell.runs > 0 ? std::sqrt(p * (1.0 - p) / cell.runs) : 0.0;
    table.add_row(
        {cell.assay, cell.router,
         fmt_prob(p) + " ± " + fmt_prob(se),
         cell.cycles.count() > 0
             ? fmt_double(cell.cycles.mean(), 1) + " ± " +
                   fmt_double(cell.cycles.ci95_halfwidth(), 1)
             : "-",
         fmt_double(cell.resyntheses.count() ? cell.resyntheses.mean() : 0.0,
                    1)});
  }
  table.print(os);
}

namespace {

std::unique_ptr<DegradationAdversary> make_adversary(
    AdversaryKind kind, const AdversaryBudget& budget) {
  switch (kind) {
    case AdversaryKind::kNone: return nullptr;
    case AdversaryKind::kRandom:
      return std::make_unique<RandomAdversary>(budget);
    case AdversaryKind::kFrontier:
      return std::make_unique<FrontierAdversary>(budget);
  }
  return nullptr;
}

void accumulate_recovery(core::RecoveryCounters& into,
                         const core::RecoveryCounters& from) {
  into.watchdog_fires += from.watchdog_fires;
  into.forced_resenses += from.forced_resenses;
  into.synthesis_retries += from.synthesis_retries;
  into.backoff_cycles += from.backoff_cycles;
  into.quarantined_cells += from.quarantined_cells;
  into.aborted_jobs += from.aborted_jobs;
}

}  // namespace

std::vector<ChaosCell> run_chaos_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers,
    const ChaosCampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty() && !config.levels.empty(),
               "chaos campaign needs an assay, a router, and a level");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "chaos campaign needs positive chip/run counts");
  std::vector<ChaosCell> cells;
  for (const assay::MoList& assay_list : assays) {
    for (const ChaosLevel& level : config.levels) {
      for (const RouterConfig& router : routers) {
        ChaosCell cell;
        cell.assay = assay_list.name;
        cell.router = router.name;
        cell.level = level.name;
        cell.sensor = level.sensor;
        for (int chip_idx = 0; chip_idx < config.chips; ++chip_idx) {
          // The substrate seed depends only on chip_idx: the same chip (same
          // degradation constants, same injected faults) underlies every
          // level and router — only the sensing channel differs.
          Rng rng(config.seed0 + static_cast<std::uint64_t>(chip_idx));
          SimulatedChipConfig chip_config = config.chip;
          chip_config.sensor = level.sensor;
          SimulatedChip chip(chip_config, rng.fork(0xC41));
          chip.set_adversary(
              make_adversary(config.adversary, config.adversary_budget));
          core::StrategyLibrary library;
          core::Scheduler scheduler(router.scheduler, &library);
          for (int run = 0; run < config.runs_per_chip; ++run) {
            chip.clear_droplets();
            const core::ExecutionStats stats =
                scheduler.run(chip, assay_list);
            ++cell.runs;
            accumulate_recovery(cell.recovery, stats.recovery);
            if (stats.success) {
              ++cell.successes;
              cell.cycles.add(static_cast<double>(stats.cycles));
            }
          }
          cell.frames_dropped += chip.sensor_channel().frames_dropped();
          cell.bits_flipped += chip.sensor_channel().bits_flipped();
        }
        cell.success_rate =
            static_cast<double>(cell.successes) / cell.runs;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

void print_chaos_campaign(std::ostream& os,
                          const std::vector<ChaosCell>& cells) {
  Table table({"bioassay", "noise", "router", "success", "cycles",
               "watchdog", "retries", "quarantined", "aborted"});
  for (const ChaosCell& cell : cells) {
    table.add_row(
        {cell.assay, cell.level, cell.router,
         std::to_string(cell.successes) + "/" + std::to_string(cell.runs),
         cell.cycles.count() > 0 ? fmt_double(cell.cycles.mean(), 1) : "-",
         std::to_string(cell.recovery.watchdog_fires),
         std::to_string(cell.recovery.synthesis_retries),
         std::to_string(cell.recovery.quarantined_cells),
         std::to_string(cell.recovery.aborted_jobs)});
  }
  table.print(os);
}

void write_chaos_csv(const std::string& path,
                     const std::vector<ChaosCell>& cells) {
  CsvWriter csv(path,
                {"assay", "router", "level", "bit_flip_p", "stuck_fraction",
                 "frame_drop_p", "runs", "successes", "success_rate",
                 "mean_cycles", "watchdog_fires", "forced_resenses",
                 "synthesis_retries", "backoff_cycles", "quarantined_cells",
                 "aborted_jobs", "frames_dropped", "bits_flipped"});
  for (const ChaosCell& cell : cells) {
    csv.write_row(
        {cell.assay, cell.router, cell.level,
         fmt_double(cell.sensor.bit_flip_p, 6),
         fmt_double(cell.sensor.stuck_fraction, 6),
         fmt_double(cell.sensor.frame_drop_p, 6),
         std::to_string(cell.runs), std::to_string(cell.successes),
         fmt_double(cell.success_rate, 4),
         cell.cycles.count() > 0 ? fmt_double(cell.cycles.mean(), 2) : "",
         std::to_string(cell.recovery.watchdog_fires),
         std::to_string(cell.recovery.forced_resenses),
         std::to_string(cell.recovery.synthesis_retries),
         std::to_string(cell.recovery.backoff_cycles),
         std::to_string(cell.recovery.quarantined_cells),
         std::to_string(cell.recovery.aborted_jobs),
         std::to_string(cell.frames_dropped),
         std::to_string(cell.bits_flipped)});
  }
}

}  // namespace meda::sim
