#include "sim/campaign.hpp"

#include <cmath>
#include <ostream>

#include "core/library.hpp"
#include "obs/obs.hpp"
#include "sim/experiments.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace meda::sim {

std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty(),
               "campaign needs at least one assay and one router");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "campaign needs positive chip/run counts");
  std::vector<CampaignCell> cells;
  for (const assay::MoList& assay_list : assays) {
    for (const RouterConfig& router : routers) {
      CampaignCell cell;
      cell.assay = assay_list.name;
      cell.router = router.name;
      MEDA_OBS_SPAN(cell_span, "campaign", "cell");
      for (int chip_idx = 0; chip_idx < config.chips; ++chip_idx) {
        RepeatedRunsConfig runs_config;
        runs_config.chip = config.chip;
        runs_config.scheduler = router.scheduler;
        runs_config.runs = config.runs_per_chip;
        runs_config.seed =
            config.seed0 + static_cast<std::uint64_t>(chip_idx);
        for (const RunRecord& record :
             run_repeated(assay_list, runs_config)) {
          cell.rollup.absorb(record.stats);
          cell.resyntheses.add(record.stats.resyntheses);
        }
      }
      cell_span.arg("assay", cell.assay);
      cell_span.arg("router", cell.router);
      cell_span.arg("runs", static_cast<std::int64_t>(cell.rollup.runs));
      cell_span.arg("successes",
                    static_cast<std::int64_t>(cell.rollup.successes));
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells) {
  Table table({"bioassay", "router", "success rate (± SE)",
               "cycles (± 95% CI)", "mean re-syntheses/run"});
  for (const CampaignCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    const double p = r.success_rate();
    const double se =
        r.runs > 0 ? std::sqrt(p * (1.0 - p) / r.runs) : 0.0;
    table.add_row(
        {cell.assay, cell.router,
         fmt_prob(p) + " ± " + fmt_prob(se),
         r.cycles.count() > 0
             ? fmt_double(r.cycles.mean(), 1) + " ± " +
                   fmt_double(r.cycles.ci95_halfwidth(), 1)
             : "-",
         fmt_double(cell.resyntheses.count() ? cell.resyntheses.mean() : 0.0,
                    1)});
  }
  table.print(os);
}

namespace {

std::unique_ptr<DegradationAdversary> make_adversary(
    AdversaryKind kind, const AdversaryBudget& budget) {
  switch (kind) {
    case AdversaryKind::kNone: return nullptr;
    case AdversaryKind::kRandom:
      return std::make_unique<RandomAdversary>(budget);
    case AdversaryKind::kFrontier:
      return std::make_unique<FrontierAdversary>(budget);
  }
  return nullptr;
}

}  // namespace

std::vector<ChaosCell> run_chaos_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers,
    const ChaosCampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty() && !config.levels.empty(),
               "chaos campaign needs an assay, a router, and a level");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "chaos campaign needs positive chip/run counts");
  std::vector<ChaosCell> cells;
  for (const assay::MoList& assay_list : assays) {
    for (const ChaosLevel& level : config.levels) {
      for (const RouterConfig& router : routers) {
        ChaosCell cell;
        cell.assay = assay_list.name;
        cell.router = router.name;
        cell.level = level.name;
        cell.sensor = level.sensor;
        for (int chip_idx = 0; chip_idx < config.chips; ++chip_idx) {
          // The substrate seed depends only on chip_idx: the same chip (same
          // degradation constants, same injected faults) underlies every
          // level and router — only the sensing channel differs.
          Rng rng(config.seed0 + static_cast<std::uint64_t>(chip_idx));
          SimulatedChipConfig chip_config = config.chip;
          chip_config.sensor = level.sensor;
          SimulatedChip chip(chip_config, rng.fork(0xC41));
          chip.set_adversary(
              make_adversary(config.adversary, config.adversary_budget));
          core::StrategyLibrary library;
          core::Scheduler scheduler(router.scheduler, &library);
          for (int run = 0; run < config.runs_per_chip; ++run) {
            MEDA_OBS_SPAN(trial_span, "campaign", "trial");
            chip.clear_droplets();
            const core::ExecutionStats stats =
                scheduler.run(chip, assay_list);
            cell.rollup.absorb(stats);
            trial_span.arg("assay", cell.assay);
            trial_span.arg("router", cell.router);
            trial_span.arg("level", cell.level);
            trial_span.arg("chip", static_cast<std::int64_t>(chip_idx));
            trial_span.arg("run", static_cast<std::int64_t>(run));
            trial_span.arg("success",
                           static_cast<std::int64_t>(stats.success ? 1 : 0));
            trial_span.arg("cycles",
                           static_cast<std::int64_t>(stats.cycles));
          }
          cell.frames_dropped += chip.sensor_channel().frames_dropped();
          cell.bits_flipped += chip.sensor_channel().bits_flipped();
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

void print_chaos_campaign(std::ostream& os,
                          const std::vector<ChaosCell>& cells) {
  Table table({"bioassay", "noise", "router", "success", "cycles",
               "watchdog", "retries", "quarantined", "detours", "aborted"});
  for (const ChaosCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    table.add_row(
        {cell.assay, cell.level, cell.router,
         std::to_string(r.successes) + "/" + std::to_string(r.runs),
         r.cycles.count() > 0 ? fmt_double(r.cycles.mean(), 1) : "-",
         std::to_string(r.recovery.watchdog_fires),
         std::to_string(r.recovery.synthesis_retries),
         std::to_string(r.recovery.quarantined_cells),
         std::to_string(r.recovery.contention_detours),
         std::to_string(r.recovery.aborted_jobs)});
  }
  table.print(os);
}

void write_chaos_csv(const std::string& path,
                     const std::vector<ChaosCell>& cells) {
  CsvWriter csv(path,
                {"assay", "router", "level", "bit_flip_p", "stuck_fraction",
                 "frame_drop_p", "runs", "successes", "success_rate",
                 "mean_cycles", "watchdog_fires", "forced_resenses",
                 "synthesis_retries", "backoff_cycles", "quarantined_cells",
                 "contention_detours", "aborted_jobs", "frames_dropped",
                 "bits_flipped"});
  for (const ChaosCell& cell : cells) {
    const core::RunRollup& r = cell.rollup;
    csv.write_row(
        {cell.assay, cell.router, cell.level,
         fmt_double(cell.sensor.bit_flip_p, 6),
         fmt_double(cell.sensor.stuck_fraction, 6),
         fmt_double(cell.sensor.frame_drop_p, 6),
         std::to_string(r.runs), std::to_string(r.successes),
         fmt_double(r.success_rate(), 4),
         r.cycles.count() > 0 ? fmt_double(r.cycles.mean(), 2) : "",
         std::to_string(r.recovery.watchdog_fires),
         std::to_string(r.recovery.forced_resenses),
         std::to_string(r.recovery.synthesis_retries),
         std::to_string(r.recovery.backoff_cycles),
         std::to_string(r.recovery.quarantined_cells),
         std::to_string(r.recovery.contention_detours),
         std::to_string(r.recovery.aborted_jobs),
         std::to_string(cell.frames_dropped),
         std::to_string(cell.bits_flipped)});
  }
}

}  // namespace meda::sim
