#include "sim/campaign.hpp"

#include <cmath>
#include <ostream>

#include "sim/experiments.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace meda::sim {

std::vector<CampaignCell> run_campaign(
    const std::vector<assay::MoList>& assays,
    const std::vector<RouterConfig>& routers, const CampaignConfig& config) {
  MEDA_REQUIRE(!assays.empty() && !routers.empty(),
               "campaign needs at least one assay and one router");
  MEDA_REQUIRE(config.chips >= 1 && config.runs_per_chip >= 1,
               "campaign needs positive chip/run counts");
  std::vector<CampaignCell> cells;
  for (const assay::MoList& assay_list : assays) {
    for (const RouterConfig& router : routers) {
      CampaignCell cell;
      cell.assay = assay_list.name;
      cell.router = router.name;
      for (int chip_idx = 0; chip_idx < config.chips; ++chip_idx) {
        RepeatedRunsConfig runs_config;
        runs_config.chip = config.chip;
        runs_config.scheduler = router.scheduler;
        runs_config.runs = config.runs_per_chip;
        runs_config.seed =
            config.seed0 + static_cast<std::uint64_t>(chip_idx);
        for (const RunRecord& record :
             run_repeated(assay_list, runs_config)) {
          ++cell.runs;
          cell.resyntheses.add(record.stats.resyntheses);
          if (record.success) {
            ++cell.successes;
            cell.cycles.add(static_cast<double>(record.cycles));
          }
        }
      }
      cell.success_rate =
          static_cast<double>(cell.successes) / cell.runs;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_campaign(std::ostream& os,
                    const std::vector<CampaignCell>& cells) {
  Table table({"bioassay", "router", "success rate (± SE)",
               "cycles (± 95% CI)", "mean re-syntheses/run"});
  for (const CampaignCell& cell : cells) {
    const double p = cell.success_rate;
    const double se =
        cell.runs > 0 ? std::sqrt(p * (1.0 - p) / cell.runs) : 0.0;
    table.add_row(
        {cell.assay, cell.router,
         fmt_prob(p) + " ± " + fmt_prob(se),
         cell.cycles.count() > 0
             ? fmt_double(cell.cycles.mean(), 1) + " ± " +
                   fmt_double(cell.cycles.ci95_halfwidth(), 1)
             : "-",
         fmt_double(cell.resyntheses.count() ? cell.resyntheses.mean() : 0.0,
                    1)});
  }
  table.print(os);
}

}  // namespace meda::sim
