#pragma once

#include <string>

#include "assay/mo.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"

/// @file report.hpp
/// Self-contained HTML execution reports: one file with the execution
/// summary, a per-MO Gantt chart (SVG), the chip's final health heatmap
/// (SVG), and — when the simulator recorded a droplet trace — a scrubbable
/// droplet animation (inline JavaScript, no external assets).
///
/// Intended for debugging bioassay schedules and for sharing experiment
/// evidence; see `run_assay --report out.html`.

namespace meda::sim {

/// Renders the report as an HTML string.
///
/// @param assay the executed MO list
/// @param stats the scheduler's execution statistics (incl. MO timings)
/// @param chip  the chip after the run (health heatmap + optional trace)
std::string render_html_report(const assay::MoList& assay,
                               const core::ExecutionStats& stats,
                               const SimulatedChip& chip);

/// Writes render_html_report() to @p path. Throws on I/O failure.
void write_html_report(const std::string& path, const assay::MoList& assay,
                       const core::ExecutionStats& stats,
                       const SimulatedChip& chip);

}  // namespace meda::sim
