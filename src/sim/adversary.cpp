#include "sim/adversary.hpp"

#include "util/check.hpp"

namespace meda::sim {

namespace {

void damage(Biochip& chip, int x, int y, std::uint64_t wear) {
  chip.mc(x, y).actuate_n(wear);
}

}  // namespace

void RandomAdversary::act(
    Biochip& chip,
    const std::vector<std::pair<core::DropletId, Rect>>& /*droplets*/,
    Rng& rng) {
  MEDA_REQUIRE(budget_.cells_per_cycle >= 0, "negative adversary budget");
  for (int i = 0; i < budget_.cells_per_cycle; ++i) {
    const int x = rng.uniform_int(0, chip.width() - 1);
    const int y = rng.uniform_int(0, chip.height() - 1);
    damage(chip, x, y, budget_.wear_per_hit);
  }
}

void FrontierAdversary::act(
    Biochip& chip,
    const std::vector<std::pair<core::DropletId, Rect>>& droplets,
    Rng& rng) {
  MEDA_REQUIRE(budget_.cells_per_cycle >= 0, "negative adversary budget");
  if (droplets.empty()) return;
  // Candidate cells: the one-cell ring around each droplet, clipped to the
  // chip (these are exactly the cells that can appear in the droplet's next
  // frontier sets).
  std::vector<Vec2i> ring;
  for (const auto& [id, pos] : droplets) {
    const Rect inflated = pos.inflated(1).intersection_with(chip.bounds());
    for (int y = inflated.ya; y <= inflated.yb; ++y) {
      for (int x = inflated.xa; x <= inflated.xb; ++x) {
        if (!pos.contains(x, y)) ring.push_back(Vec2i{x, y});
      }
    }
  }
  if (ring.empty()) return;
  for (int i = 0; i < budget_.cells_per_cycle; ++i) {
    const Vec2i cell =
        ring[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(ring.size()) - 1))];
    damage(chip, cell.x, cell.y, budget_.wear_per_hit);
  }
}

}  // namespace meda::sim
