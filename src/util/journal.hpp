#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

/// @file journal.hpp
/// Append-only crash-recoverable record journal, the write-ahead companion
/// to SlotCheckpoint: where the checkpoint rewrites a full slot snapshot
/// atomically, the journal appends one flushed line per completed unit of
/// work and replays the prefix that survived a crash.
///
/// File format:
///
///   meda-journal v1 <digest-hex>
///   <record>
///   <record>
///   ...
///
/// The header line is created atomically (written to "<path>.tmp", then
/// POSIX-renamed over the destination), so a crash during creation leaves
/// either no journal or a complete empty one. Records are appended with one
/// flush per line; a SIGKILL mid-append can leave at most one torn tail
/// line (no terminating '\n'), which load drops — exactly the
/// SlotCheckpoint torn-write rule. The digest encodes the configuration
/// that produced the records; on resume, a header whose digest (or version)
/// does not match means the journal belongs to a different run and is
/// started fresh instead of replayed.
///
/// Not thread-safe: the synthesis service appends from its serial settle
/// stage (the same discipline that keeps its outputs byte-identical at any
/// --jobs).
namespace meda::util {

class AppendJournal {
 public:
  /// Binds the journal to @p path. With @p resume set, an existing journal
  /// whose header matches @p digest is replayed into `records()` (torn tail
  /// dropped); otherwise — mismatched digest, wrong version, garbage, or no
  /// file — a fresh journal containing only the header is created
  /// atomically. An empty @p path disables the journal (appends are
  /// dropped, records stay empty). An unwritable path degrades the same
  /// way: the run proceeds without durability.
  void open(std::string path, std::uint64_t digest, bool resume);

  bool enabled() const { return out_.is_open(); }

  /// Appends one single-line record and flushes it to disk. Also visible
  /// immediately through `records()`, so a later consumer sharing this
  /// journal object replays earlier appends without re-reading the file.
  void append(const std::string& payload);

  /// Every durable record: the replayed prefix followed by this process's
  /// appends, in append order.
  const std::vector<std::string>& records() const { return records_; }

  /// How many records were replayed from disk by `open(..., resume=true)`.
  std::size_t restored_count() const { return restored_count_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<std::string> records_;
  std::size_t restored_count_ = 0;
};

}  // namespace meda::util
