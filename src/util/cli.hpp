#pragma once

#include <string>

/// @file cli.hpp
/// Tiny argv helpers shared by the bench drivers. Flags follow the same
/// conventions as parse_jobs_flag (thread_pool.hpp): boolean flags are bare
/// (`--full`), valued flags accept both `--flag value` and `--flag=value`.
namespace meda::util {

/// True when @p name (e.g. "--resume") appears in argv, bare or as the
/// `--name=value` prefix.
bool has_flag(int argc, char** argv, const std::string& name);

/// Value of `--name value` / `--name=value`, or @p fallback when the flag is
/// absent or valueless.
std::string flag_value(int argc, char** argv, const std::string& name,
                       const std::string& fallback = "");

}  // namespace meda::util
