#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>
#include <exception>

/// @file thread_pool.hpp
/// Minimal fixed-size worker pool for the embarrassingly-parallel layers
/// (campaign trial loops, bench drivers). Deliberately small: a FIFO task
/// queue, N workers, and first-exception propagation — no futures, no work
/// stealing, no task priorities.
///
/// Determinism contract: the pool parallelizes *independent* tasks whose
/// outputs go to preallocated slots; callers reduce the slots serially in a
/// fixed order afterwards. Nothing about scheduling order may influence
/// results — see parallel_for() and docs/performance.md.

namespace meda::util {

/// Fixed-size worker pool. Tasks run in submission order (FIFO pickup, but
/// completion order is unspecified). Destruction drains the queue and joins.
class ThreadPool {
 public:
  /// Spawns @p threads workers; @p threads must be >= 1.
  explicit ThreadPool(int threads);

  /// Waits for all submitted tasks, then joins the workers. Task exceptions
  /// not yet collected via wait() are dropped — call wait() first when you
  /// care about them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread, including workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception (if any; later ones are dropped).
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  ///< queued + running tasks
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// The effective worker count for @p jobs over @p count items: @p jobs
/// capped by @p count, with jobs <= 0 meaning "one per hardware thread".
int effective_jobs(int jobs, std::size_t count);

/// Runs body(0) … body(count-1), distributing indices over
/// effective_jobs(jobs, count) workers (dynamic pickup — items need not
/// take uniform time). jobs <= 1 degenerates to a plain serial loop on the
/// calling thread with zero threading overhead.
///
/// The first exception thrown by @p body is rethrown here; once one is
/// raised, remaining indices may be skipped. @p body must make each index
/// independent of every other (write to its own slot, seed its own RNG from
/// the index), so that results are identical at any job count.
void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Scans argv for `--jobs N` / `--jobs=N` (the bench drivers' shared flag)
/// and returns N, or @p default_jobs when absent. N = 0 conventionally
/// means "one worker per hardware thread" (see effective_jobs).
int parse_jobs_flag(int argc, char** argv, int default_jobs = 1);

}  // namespace meda::util
