#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

/// @file deadline.hpp
/// Cooperative deadline/cancellation token for long-running solver loops,
/// plus the per-tenant budget ledger the synthesis service charges solves
/// against.
///
/// A Deadline is a cheap copyable handle over shared state; every copy
/// observes the same expiry. Three triggers compose (any one expires the
/// token):
///
///  - a wall-clock budget (`after_seconds`) checked against steady_clock;
///  - a deterministic check-count budget (`after_checks`): the token expires
///    after it has been polled N times, independent of wall time — the knob
///    tests and reproducible campaigns use to force expiry at an exact
///    sweep;
///  - manual cancellation (`cancel()`).
///
/// Callers poll `expired()` at coarse granularity (once per Gauss-Seidel
/// sweep, not per state) so the poll cost is invisible next to the work it
/// bounds. A default-constructed Deadline is inactive: `expired()` is false
/// forever and costs one relaxed atomic load.
///
/// Edge cases are pinned deterministic (tests/util/deadline_test.cpp):
/// a zero or negative wall budget constructs an already-expired token
/// without ever consulting the clock, absurdly large budgets saturate
/// instead of overflowing steady_clock arithmetic (which would wrap the
/// expiry into the past), and a check budget of N survives exactly N polls
/// on every machine.
namespace meda::util {

class Deadline {
 public:
  /// Inactive token: never expires (until `cancel()`).
  Deadline() : state_(std::make_shared<State>()) {}

  /// Token that expires once @p seconds of wall time elapse. Non-positive
  /// budgets are already expired at construction (no clock comparison
  /// involved — the token is born cancelled, deterministically). Budgets
  /// too large for steady_clock arithmetic saturate to "never expires by
  /// time" instead of wrapping.
  static Deadline after_seconds(double seconds);

  /// Token that survives exactly @p checks `expired()` polls and expires on
  /// the next one. Deterministic across machines and runs;
  /// `after_checks(0)` is already expired.
  static Deadline after_checks(std::uint64_t checks);

  /// True if any trigger (time, check budget, cancel) is armed.
  bool active() const {
    return state_->cancelled.load(std::memory_order_relaxed) ||
           state_->has_time_limit || state_->has_check_limit;
  }

  /// Polls the token. Once true, stays true.
  bool expired() const;

  /// Manually expires the token (all copies observe it).
  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  /// Polls consumed so far by every copy of this token (each `expired()`
  /// call on a check-limited token counts one). The budget ledger settles
  /// a solve's real cost from this.
  std::uint64_t checks_used() const {
    return state_->checks.load(std::memory_order_relaxed);
  }

  /// The armed check budget (0 when no check limit is armed).
  std::uint64_t check_limit() const {
    return state_->has_check_limit ? state_->check_limit : 0;
  }
  bool has_check_limit() const { return state_->has_check_limit; }

 private:
  using Clock = std::chrono::steady_clock;

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> checks{0};
    bool has_time_limit = false;
    bool has_check_limit = false;
    std::uint64_t check_limit = 0;
    Clock::time_point not_after{};
  };

  std::shared_ptr<State> state_;
};

/// Deterministic per-tenant budget ledger over Deadline check budgets: the
/// synthesis service gives every tenant one ledger per refill window, arms
/// each of the tenant's solves with `acquire()` (a Deadline bounded by the
/// smaller of the per-solve cap and whatever the tenant has left), and
/// charges the polls the solve actually consumed back with `settle()`.
/// Once a tenant's window is spent, its solves get already-expired tokens
/// (they degrade to the client-side fallback router immediately) — one
/// tenant's re-synthesis storm can exhaust only its own window, never a
/// sibling's.
///
/// Not thread-safe: the service acquires and settles from its serial
/// dispatch stages.
class DeadlineLedger {
 public:
  /// @p budget_checks per window; 0 = unlimited (acquire() arms only the
  /// per-solve cap and settle() is a no-op).
  explicit DeadlineLedger(std::uint64_t budget_checks = 0)
      : budget_(budget_checks), remaining_(budget_checks) {}

  bool unlimited() const { return budget_ == 0; }
  std::uint64_t budget() const { return budget_; }
  std::uint64_t remaining() const { return unlimited() ? ~0ull : remaining_; }
  std::uint64_t spent() const { return spent_; }
  bool exhausted() const { return !unlimited() && remaining_ == 0; }

  /// Arms a solve's Deadline: check budget = min(@p cap, remaining), where
  /// cap 0 means "no per-solve cap". An exhausted ledger returns an
  /// already-expired token; an unlimited ledger with cap 0 returns an
  /// inactive token (the callee's own config applies).
  Deadline acquire(std::uint64_t cap = 0) const;

  /// Charges the checks a Deadline from acquire() actually consumed,
  /// clamped to its armed budget (expired tokens keep counting polls; the
  /// tenant owes at most what was armed).
  void settle(const Deadline& deadline);

  /// Charges @p used checks directly — the journal-replay path, where the
  /// original solve's settled cost is recorded and the ledger must evolve
  /// exactly as it did in the straight run.
  void charge(std::uint64_t used) {
    spent_ += used;
    if (!unlimited()) remaining_ -= std::min(used, remaining_);
  }

  /// Starts a fresh window: remaining back to the full budget.
  void refill() { remaining_ = budget_; }

 private:
  std::uint64_t budget_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t spent_ = 0;
};

}  // namespace meda::util
