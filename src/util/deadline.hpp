#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

/// @file deadline.hpp
/// Cooperative deadline/cancellation token for long-running solver loops.
///
/// A Deadline is a cheap copyable handle over shared state; every copy
/// observes the same expiry. Three triggers compose (any one expires the
/// token):
///
///  - a wall-clock budget (`after_seconds`) checked against steady_clock;
///  - a deterministic check-count budget (`after_checks`): the token expires
///    after it has been polled N times, independent of wall time — the knob
///    tests and reproducible campaigns use to force expiry at an exact
///    sweep;
///  - manual cancellation (`cancel()`).
///
/// Callers poll `expired()` at coarse granularity (once per Gauss-Seidel
/// sweep, not per state) so the poll cost is invisible next to the work it
/// bounds. A default-constructed Deadline is inactive: `expired()` is false
/// forever and costs one relaxed atomic load.
namespace meda::util {

class Deadline {
 public:
  /// Inactive token: never expires (until `cancel()`).
  Deadline() : state_(std::make_shared<State>()) {}

  /// Token that expires once @p seconds of wall time elapse. Non-positive
  /// budgets expire immediately.
  static Deadline after_seconds(double seconds);

  /// Token that survives exactly @p checks `expired()` polls and expires on
  /// the next one. Deterministic across machines and runs;
  /// `after_checks(0)` is already expired.
  static Deadline after_checks(std::uint64_t checks);

  /// True if any trigger (time, check budget, cancel) is armed.
  bool active() const {
    return state_->cancelled.load(std::memory_order_relaxed) ||
           state_->has_time_limit || state_->has_check_limit;
  }

  /// Polls the token. Once true, stays true.
  bool expired() const;

  /// Manually expires the token (all copies observe it).
  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> checks{0};
    bool has_time_limit = false;
    bool has_check_limit = false;
    std::uint64_t check_limit = 0;
    Clock::time_point not_after{};
  };

  std::shared_ptr<State> state_;
};

}  // namespace meda::util
