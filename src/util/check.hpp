#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// @file check.hpp
/// Precondition / invariant checking macros used across the library.
///
/// Contract violations throw exceptions (rather than aborting) so that both
/// tests and long-running experiment harnesses can observe and report them.

namespace meda {

/// Thrown when a function argument violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (indicates a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace meda

/// Validates a caller-supplied argument; throws meda::PreconditionError.
#define MEDA_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::meda::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                         (msg));                        \
  } while (false)

/// Validates an internal invariant; throws meda::InvariantError.
#define MEDA_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::meda::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
