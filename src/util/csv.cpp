#include "util/csv.hpp"

#include "util/check.hpp"

namespace meda {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  MEDA_REQUIRE(!header.empty(), "csv needs at least one column");
  if (out_.is_open()) emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  MEDA_REQUIRE(fields.size() == columns_, "csv row width mismatch");
  if (out_.is_open()) emit(fields);
}

void CsvWriter::emit(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out_ << escape(fields[i]);
    if (i + 1 < fields.size()) out_ << ',';
  }
  out_ << '\n';
}

}  // namespace meda
