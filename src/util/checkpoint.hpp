#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

/// @file checkpoint.hpp
/// Crash-safe slot checkpointing for long campaign sweeps.
///
/// A campaign flattens its (cell, chip) grid into `slot_count` independent
/// work items; SlotCheckpoint persists each completed slot's serialized
/// payload so a killed run can resume with only the missing slots. The file
/// is rewritten atomically (write `<path>.tmp`, then rename over `<path>`),
/// so a `kill -9` at any instant leaves either the previous complete
/// checkpoint or the new one — never a torn file.
///
/// File format (line-oriented text):
///
///     meda-checkpoint v1 <digest-hex> <slot_count>
///     <slot-index> <payload...>
///     ...
///
/// The digest is a caller-computed hash of everything that determines a
/// slot's result (campaign config, seeds, grid shape). On resume, a digest
/// or slot-count mismatch discards the stale file and starts fresh, so a
/// checkpoint can never graft results from a different configuration into a
/// run. Slot indices are payload keys, not an ordering: resuming at a
/// different `--jobs` count completes slots in a different order yet yields
/// the same file contents once all slots land.
namespace meda::util {

/// FNV-1a accumulator for building checkpoint digests out of the config
/// fields and seeds that determine a campaign's results.
class DigestBuilder {
 public:
  DigestBuilder& mix(std::uint64_t v) {
    hash_ ^= v;
    hash_ *= 1099511628211ull;  // FNV prime
    return *this;
  }
  DigestBuilder& mix(std::int64_t v) {
    return mix(static_cast<std::uint64_t>(v));
  }
  DigestBuilder& mix(int v) { return mix(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(v))); }
  DigestBuilder& mix(double v);
  DigestBuilder& mix(const std::string& s);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// Periodic, atomic checkpoint of completed slots. Thread-safe: pool
/// workers `record()` concurrently; flushes serialize on an internal mutex.
class SlotCheckpoint {
 public:
  /// Inactive checkpoint: restored() is empty and record() is a no-op.
  SlotCheckpoint() = default;

  /// Opens a checkpoint at @p path for @p slot_count slots under @p digest.
  /// When @p resume is true an existing compatible file is loaded and its
  /// completed slots become available via restored(); otherwise any
  /// existing file is ignored (and overwritten by the first flush). The
  /// file is rewritten after every @p flush_every newly recorded slots and
  /// on flush().
  void open(std::string path, std::uint64_t digest, bool resume,
            std::size_t slot_count, int flush_every = 8);

  bool active() const { return !path_.empty(); }

  /// Payload restored for @p slot from a previous run, or nullptr if the
  /// slot still needs computing.
  const std::string* restored(std::size_t slot) const;

  /// Number of slots restored from the existing file at open().
  std::size_t restored_count() const { return restored_count_; }

  /// Records @p slot as complete. @p payload must be single-line (no '\n').
  void record(std::size_t slot, const std::string& payload);

  /// Forces the file to disk (atomic rewrite) regardless of flush_every.
  void flush();

 private:
  void write_file_locked();

  std::string path_;
  std::uint64_t digest_ = 0;
  int flush_every_ = 8;
  std::size_t restored_count_ = 0;
  std::vector<std::optional<std::string>> slots_;
  int unflushed_ = 0;
  std::mutex mutex_;
};

}  // namespace meda::util
