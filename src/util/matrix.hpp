#pragma once

#include <vector>

#include "util/check.hpp"

/// @file matrix.hpp
/// Dense 2-D array addressed as (x, y) to match the paper's MC_ij convention,
/// where i is the column (x, 1-based in the paper, 0-based here) and j the row.

namespace meda {

/// Dense width×height grid with value semantics. Storage is row-major in y.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Creates a width×height matrix filled with @p init.
  Matrix(int width, int height, const T& init = T{})
      : width_(width), height_(height) {
    MEDA_REQUIRE(width >= 0 && height >= 0, "matrix dimensions negative");
    data_.assign(static_cast<std::size_t>(width) *
                     static_cast<std::size_t>(height),
                 init);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// True if (x, y) lies inside the grid.
  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Bounds-checked element access.
  T& at(int x, int y) {
    MEDA_REQUIRE(in_bounds(x, y), "matrix index out of bounds");
    return data_[index(x, y)];
  }
  const T& at(int x, int y) const {
    MEDA_REQUIRE(in_bounds(x, y), "matrix index out of bounds");
    return data_[index(x, y)];
  }

  /// Unchecked element access for hot loops (caller guarantees bounds).
  T& operator()(int x, int y) { return data_[index(x, y)]; }
  const T& operator()(int x, int y) const { return data_[index(x, y)]; }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  /// Flat storage view (y-major); useful for reductions and hashing.
  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using BoolMatrix = Matrix<unsigned char>;
using DoubleMatrix = Matrix<double>;
using IntMatrix = Matrix<int>;

}  // namespace meda
