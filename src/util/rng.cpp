#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace meda {

namespace {

/// splitmix64 finalizer — decorrelates related seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::uint64_t stream) {
  const std::uint64_t base = engine_();
  return Rng(mix(base ^ mix(stream)));
}

double Rng::uniform(double lo, double hi) {
  MEDA_REQUIRE(lo <= hi, "uniform bounds out of order");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  MEDA_REQUIRE(lo <= hi, "uniform_int bounds out of order");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  MEDA_REQUIRE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    MEDA_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MEDA_REQUIRE(total > 0.0, "categorical needs a positive total weight");
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric slack: fall back to the last bucket
}

double Rng::normal(double mean, double sd) {
  MEDA_REQUIRE(sd >= 0.0, "normal sd must be non-negative");
  if (sd == 0.0) return mean;
  return std::normal_distribution<double>(mean, sd)(engine_);
}

std::vector<int> sample_without_replacement(Rng& rng, int population, int n) {
  MEDA_REQUIRE(population >= 0 && n >= 0 && n <= population,
               "sample size exceeds population");
  // Partial Fisher–Yates: O(population) memory, O(population + n) time.
  std::vector<int> pool(static_cast<std::size_t>(population));
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int j = rng.uniform_int(i, population - 1);
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
    out.push_back(pool[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace meda
