#pragma once

#include <fstream>
#include <string>
#include <vector>

/// @file csv.hpp
/// Minimal CSV writer so every bench can optionally dump machine-readable
/// series next to the ASCII tables (for external plotting).

namespace meda {

/// Streams rows to a CSV file. Fields containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens @p path for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row. Requires the field count to match the header.
  void write_row(const std::vector<std::string>& fields);

  bool is_open() const { return out_.is_open(); }

 private:
  void emit(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace meda
