#include "util/journal.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace meda::util {

namespace {

std::string header_line(std::uint64_t digest) {
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string("meda-journal v1 ") + digest_hex;
}

bool header_matches(const std::string& line, std::uint64_t digest) {
  std::istringstream header(line);
  std::string magic, version, digest_hex;
  header >> magic >> version >> digest_hex;
  if (magic != "meda-journal" || version != "v1") return false;
  std::uint64_t file_digest = 0;
  try {
    file_digest = std::stoull(digest_hex, nullptr, 16);
  } catch (...) {
    return false;
  }
  return file_digest == digest;
}

}  // namespace

void AppendJournal::open(std::string path, std::uint64_t digest, bool resume) {
  if (out_.is_open()) out_.close();
  path_ = std::move(path);
  records_.clear();
  restored_count_ = 0;
  if (path_.empty()) return;

  bool replayed = false;
  if (resume) {
    std::ifstream in(path_);
    std::string line;
    if (in && std::getline(in, line) && header_matches(line, digest)) {
      while (std::getline(in, line)) {
        // A line with no terminating '\n' (eof hit mid-line) is the torn
        // tail of a killed append: drop it, the unit of work just re-runs.
        if (in.eof()) break;
        if (line.empty()) continue;
        records_.push_back(line);
      }
      restored_count_ = records_.size();
      replayed = true;
    }
  }

  if (replayed) {
    // Rewrite header + surviving records atomically so the torn tail (if
    // any) is physically gone before new appends land after it.
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return;  // unwritable directory: run without durability
      out << header_line(digest) << '\n';
      for (const std::string& record : records_) out << record << '\n';
    }
    std::rename(tmp.c_str(), path_.c_str());
    out_.open(path_, std::ios::app);
    return;
  }

  // Fresh journal: create the header atomically (tmp + rename), so readers
  // and resumed runs see either no journal or a well-formed one.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << header_line(digest) << '\n';
  }
  std::rename(tmp.c_str(), path_.c_str());
  out_.open(path_, std::ios::app);
}

void AppendJournal::append(const std::string& payload) {
  MEDA_REQUIRE(payload.find('\n') == std::string::npos,
               "journal record must be single-line");
  if (!out_.is_open()) return;
  out_ << payload << '\n';
  out_.flush();
  records_.push_back(payload);
}

}  // namespace meda::util
