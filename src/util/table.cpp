#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace meda {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MEDA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MEDA_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_int(long long v) {
  const bool neg = v < 0;
  unsigned long long mag =
      neg ? 0ull - static_cast<unsigned long long>(v)
          : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_prob(double p) { return fmt_double(p, 3); }

std::string fmt_sci(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", decimals, v);
  return buf;
}

}  // namespace meda
