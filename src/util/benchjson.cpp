#include "util/benchjson.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

namespace meda::util {

namespace {

/// Minimal JSON DOM — just enough structure to walk a Google-Benchmark
/// output file. Numbers are doubles (benchmark times are), object members
/// keep file order.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out, std::string* error) {
    const bool ok = value(out) && (skip_ws(), i_ == s_.size());
    if (!ok && error != nullptr) {
      *error = err_.empty() ? "trailing garbage after JSON value" : err_;
      *error += " (at byte " + std::to_string(i_) + ")";
    }
    return ok;
  }

 private:
  bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r'))
      ++i_;
  }
  bool literal(const char* text) {
    const std::size_t n = std::char_traits<char>::length(text);
    if (s_.compare(i_, n, text) != 0) return fail("bad literal");
    i_ += n;
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (i_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[i_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = Json::Type::kString;
        return string(out.string);
      case 't':
        out.type = Json::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Json::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Json::Type::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(Json& out) {
    out.type = Json::Type::kObject;
    ++i_;  // '{'
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (i_ >= s_.size() || s_[i_] != '"' || !string(key))
        return fail("expected object key");
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return fail("expected ':'");
      ++i_;
      Json member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (i_ < s_.size() && s_[i_] == '}') {
        ++i_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json& out) {
    out.type = Json::Type::kArray;
    ++i_;  // '['
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      Json element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (i_ < s_.size() && s_[i_] == ']') {
        ++i_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++i_;  // opening quote
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c == '\\') {
        if (i_ + 1 >= s_.size()) return fail("truncated escape");
        const char e = s_[i_ + 1];
        i_ += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // Benchmark names are ASCII; keep \u escapes as replacement
            // text rather than decoding surrogates — names containing them
            // simply won't match, which is the right failure mode here.
            if (i_ + 4 > s_.size()) return fail("truncated \\u escape");
            out += '?';
            i_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out.push_back(c);
      ++i_;
    }
    return fail("unterminated string");
  }

  bool number(Json& out) {
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    out.type = Json::Type::kNumber;
    out.number = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    i_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::string err_;
};

double number_or(const Json& obj, const std::string& key, double fallback) {
  const Json* v = obj.find(key);
  return v != nullptr && v->type == Json::Type::kNumber ? v->number
                                                        : fallback;
}

std::string string_or(const Json& obj, const std::string& key,
                      const std::string& fallback) {
  const Json* v = obj.find(key);
  return v != nullptr && v->type == Json::Type::kString ? v->string
                                                        : fallback;
}

}  // namespace

bool parse_benchmark_json(const std::string& text,
                          std::vector<BenchEntry>& out, std::string* error) {
  Json root;
  if (!JsonParser(text).parse(root, error)) return false;
  if (root.type != Json::Type::kObject) {
    if (error != nullptr) *error = "top-level JSON value is not an object";
    return false;
  }
  const Json* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || benchmarks->type != Json::Type::kArray) {
    if (error != nullptr) *error = "no \"benchmarks\" array in document";
    return false;
  }
  out.clear();
  out.reserve(benchmarks->array.size());
  for (const Json& item : benchmarks->array) {
    if (item.type != Json::Type::kObject) continue;
    BenchEntry entry;
    entry.name = string_or(item, "name", "");
    if (entry.name.empty()) continue;
    entry.run_type = string_or(item, "run_type", "");
    entry.real_time = number_or(item, "real_time", 0.0);
    entry.cpu_time = number_or(item, "cpu_time", 0.0);
    entry.time_unit = string_or(item, "time_unit", "ns");
    out.push_back(std::move(entry));
  }
  return true;
}

double time_unit_to_ns(const std::string& time_unit) {
  if (time_unit == "ns") return 1.0;
  if (time_unit == "us") return 1e3;
  if (time_unit == "ms") return 1e6;
  if (time_unit == "s") return 1e9;
  return 1.0;
}

namespace {

/// name → mean time in ns over iteration rows (aggregate rows skipped).
std::map<std::string, double> collapse(const std::vector<BenchEntry>& entries,
                                       bool use_cpu_time) {
  std::map<std::string, std::pair<double, int>> acc;  // name → (sum, count)
  for (const BenchEntry& entry : entries) {
    if (entry.run_type == "aggregate") continue;
    const double t = (use_cpu_time ? entry.cpu_time : entry.real_time) *
                     time_unit_to_ns(entry.time_unit);
    auto& [sum, count] = acc[entry.name];
    sum += t;
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [name, sum_count] : acc)
    out[name] = sum_count.first / sum_count.second;
  return out;
}

}  // namespace

BenchComparison compare_benchmarks(const std::vector<BenchEntry>& baseline,
                                   const std::vector<BenchEntry>& candidate,
                                   bool use_cpu_time) {
  const std::map<std::string, double> base = collapse(baseline, use_cpu_time);
  const std::map<std::string, double> cand =
      collapse(candidate, use_cpu_time);
  BenchComparison out;
  for (const auto& [name, base_ns] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      out.only_baseline.push_back(name);
      continue;
    }
    BenchDelta delta;
    delta.name = name;
    delta.baseline_ns = base_ns;
    delta.candidate_ns = it->second;
    delta.ratio = base_ns > 0.0 ? it->second / base_ns : 0.0;
    out.matched.push_back(std::move(delta));
  }
  for (const auto& [name, cand_ns] : cand) {
    (void)cand_ns;
    if (base.find(name) == base.end()) out.only_candidate.push_back(name);
  }
  return out;  // maps iterate sorted, so every list is name-sorted
}

}  // namespace meda::util
