#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace meda::stats {

double mean(std::span<const double> xs) {
  MEDA_REQUIRE(!xs.empty(), "mean of empty series");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  MEDA_REQUIRE(xs.size() >= 2, "sample variance needs >= 2 samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double population_variance(std::span<const double> xs) {
  MEDA_REQUIRE(!xs.empty(), "population variance of empty series");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double population_stddev(std::span<const double> xs) {
  return std::sqrt(population_variance(xs));
}

double covariance(std::span<const double> xs, std::span<const double> ys) {
  MEDA_REQUIRE(xs.size() == ys.size(), "covariance of unequal-length series");
  MEDA_REQUIRE(!xs.empty(), "covariance of empty series");
  const double mx = mean(xs);
  const double my = mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    acc += (xs[i] - mx) * (ys[i] - my);
  return acc / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const double sx = population_stddev(xs);
  const double sy = population_stddev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(xs, ys) / (sx * sy);
}

double pearson_bool(std::span<const unsigned char> xs,
                    std::span<const unsigned char> ys) {
  MEDA_REQUIRE(xs.size() == ys.size(), "pearson of unequal-length series");
  MEDA_REQUIRE(!xs.empty(), "pearson of empty series");
  // Single pass over the Boolean vectors; avoids materializing doubles.
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxy += static_cast<double>(xs[i]) * static_cast<double>(ys[i]);
  }
  const double mx = sx / n;
  const double my = sy / n;
  // For Boolean data x² = x, so E[x²] = E[x].
  const double vx = mx - mx * mx;
  const double vy = my - my * my;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  const double cov = sxy / n - mx * my;
  return cov / std::sqrt(vx * vy);
}

namespace {

/// R² of predictions against observations; adjusted for @p params parameters.
void fill_r2(std::span<const double> ys, std::span<const double> preds,
             std::size_t params, FitResult& fit) {
  const double my = mean(ys);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_res += (ys[i] - preds[i]) * (ys[i] - preds[i]);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  const auto n = static_cast<double>(ys.size());
  const auto p = static_cast<double>(params);
  if (n - p - 1.0 > 0.0) {
    fit.r2_adjusted = 1.0 - (1.0 - fit.r2) * (n - 1.0) / (n - p - 1.0);
  } else {
    fit.r2_adjusted = fit.r2;
  }
}

}  // namespace

FitResult linear_fit(std::span<const double> xs, std::span<const double> ys) {
  MEDA_REQUIRE(xs.size() == ys.size(), "fit of unequal-length series");
  MEDA_REQUIRE(xs.size() >= 3, "fit needs >= 3 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  MEDA_REQUIRE(sxx > 0.0, "fit requires non-constant x");
  FitResult fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  std::vector<double> preds(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    preds[i] = fit.intercept + fit.slope * xs[i];
  fill_r2(ys, preds, 1, fit);
  return fit;
}

FitResult exponential_fit(std::span<const double> xs,
                          std::span<const double> ys) {
  MEDA_REQUIRE(xs.size() == ys.size(), "fit of unequal-length series");
  MEDA_REQUIRE(xs.size() >= 3, "fit needs >= 3 points");
  std::vector<double> logy(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    MEDA_REQUIRE(ys[i] > 0.0, "exponential fit requires positive y");
    logy[i] = std::log(ys[i]);
  }
  FitResult fit = linear_fit(xs, logy);
  // Re-evaluate goodness of fit in the original space.
  std::vector<double> preds(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    preds[i] = std::exp(fit.intercept + fit.slope * xs[i]);
  fill_r2(ys, preds, 2, fit);
  return fit;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MEDA_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  // Two-sided 95% t critical values for small degrees of freedom; 1.96 in
  // the asymptotic regime.
  static constexpr double kT[] = {12.706, 4.303, 3.182, 2.776, 2.571,
                                  2.447,  2.365, 2.306, 2.262, 2.228,
                                  2.201,  2.179, 2.160, 2.145, 2.131};
  const std::size_t dof = n_ - 1;
  const double t = dof <= 15 ? kT[dof - 1]
                   : dof <= 30 ? 2.05
                               : 1.96;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const {
  MEDA_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  MEDA_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

}  // namespace meda::stats
