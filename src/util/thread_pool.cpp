#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "util/check.hpp"

namespace meda::util {

ThreadPool::ThreadPool(int threads) {
  MEDA_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int effective_jobs(int jobs, std::size_t count) {
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (count < static_cast<std::size_t>(jobs))
    jobs = static_cast<int>(count);
  return jobs < 1 ? 1 : jobs;
}

void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const int workers = effective_jobs(jobs, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(workers);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  for (int w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count && !failed.load(std::memory_order_relaxed);
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          body(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // the pool records the first exception for wait()
        }
      }
    });
  }
  pool.wait();
}

int parse_jobs_flag(int argc, char** argv, int default_jobs) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (arg.substr(0, 7) == "--jobs=") return std::atoi(argv[i] + 7);
  }
  return default_jobs;
}

}  // namespace meda::util
