#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// @file table.hpp
/// Fixed-width ASCII table printer used by the benchmark harnesses to emit the
/// same rows/series the paper's tables and figures report.

namespace meda {

/// Column-aligned text table. Cells are preformatted strings; use the fmt_*
/// helpers for numbers so all benches render consistently.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Requires the cell count to match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with @p decimals fractional digits.
std::string fmt_double(double v, int decimals = 3);

/// Formats an integer with thousands separators ("26,720" style).
std::string fmt_int(long long v);

/// Formats a probability or ratio as e.g. "0.532".
std::string fmt_prob(double p);

/// Formats a value in scientific notation with @p decimals digits.
std::string fmt_sci(double v, int decimals = 3);

}  // namespace meda
