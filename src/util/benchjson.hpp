#pragma once

#include <string>
#include <vector>

/// @file benchjson.hpp
/// Google-Benchmark JSON parsing and run-to-run comparison — the library
/// behind `bench/bench_compare`, split out so the diff logic is unit-testable
/// without subprocessing the tool.
///
/// The parser is a minimal self-contained JSON reader (no dependency): it
/// understands the subset Google Benchmark emits with `--benchmark_out` /
/// `--benchmark_format=json` and extracts the `benchmarks` array. Comparison
/// matches entries by name, normalizes times to nanoseconds via `time_unit`,
/// and reports per-benchmark ratios; the regression policy (thresholds,
/// exit codes) lives in the tool, not here.

namespace meda::util {

/// One entry of a Google-Benchmark JSON `benchmarks` array.
struct BenchEntry {
  std::string name;
  std::string run_type;  ///< "iteration", "aggregate", or empty (old files)
  double real_time = 0.0;
  double cpu_time = 0.0;
  std::string time_unit = "ns";
};

/// Extracts the `benchmarks` array from a Google-Benchmark JSON document.
/// Returns false (with a message in @p error when non-null) on malformed
/// JSON or a missing/ill-typed `benchmarks` member.
bool parse_benchmark_json(const std::string& text,
                          std::vector<BenchEntry>& out,
                          std::string* error = nullptr);

/// Multiplier from @p time_unit ("ns"/"us"/"ms"/"s") to nanoseconds;
/// unknown units fall back to 1 (treated as already-ns).
double time_unit_to_ns(const std::string& time_unit);

/// One name-matched benchmark pair. Times are in nanoseconds.
struct BenchDelta {
  std::string name;
  double baseline_ns = 0.0;
  double candidate_ns = 0.0;
  /// candidate / baseline: > 1 is a slowdown, < 1 a speedup. 0 when the
  /// baseline time is 0 (degenerate entry).
  double ratio = 0.0;
};

/// The full diff of two benchmark files.
struct BenchComparison {
  std::vector<BenchDelta> matched;           ///< name-sorted
  std::vector<std::string> only_baseline;    ///< removed benchmarks
  std::vector<std::string> only_candidate;   ///< added benchmarks
};

/// Name-matches two entry lists. Aggregate rows (mean/median/stddev from
/// `--benchmark_repetitions`) are skipped; repeated iteration rows with the
/// same name are averaged. @p use_cpu_time selects cpu_time (default, less
/// scheduler noise) over real_time.
BenchComparison compare_benchmarks(const std::vector<BenchEntry>& baseline,
                                   const std::vector<BenchEntry>& candidate,
                                   bool use_cpu_time = true);

}  // namespace meda::util
