#include "util/cli.hpp"

namespace meda::util {

bool has_flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name || arg.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::string flag_value(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == name && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

}  // namespace meda::util
