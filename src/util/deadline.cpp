#include "util/deadline.hpp"

namespace meda::util {

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.state_->has_time_limit = true;
  if (seconds <= 0.0) {
    d.state_->not_after = Clock::now();
  } else {
    d.state_->not_after =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  }
  return d;
}

Deadline Deadline::after_checks(std::uint64_t checks) {
  Deadline d;
  d.state_->has_check_limit = true;
  d.state_->check_limit = checks;
  return d;
}

bool Deadline::expired() const {
  State& s = *state_;
  if (s.cancelled.load(std::memory_order_relaxed)) return true;
  if (s.has_check_limit) {
    // fetch_add counts this poll; the token expires on poll number
    // check_limit + 1 and every poll after it.
    if (s.checks.fetch_add(1, std::memory_order_relaxed) >= s.check_limit) {
      s.cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  if (s.has_time_limit && Clock::now() >= s.not_after) {
    s.cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace meda::util
