#include "util/deadline.hpp"

#include <algorithm>

namespace meda::util {

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.state_->has_time_limit = true;
  if (seconds <= 0.0) {
    // Born expired, deterministically: no clock is consulted, so a zero or
    // negative budget behaves identically on every machine (and under a
    // frozen clock) instead of relying on now() >= now().
    d.state_->cancelled.store(true, std::memory_order_relaxed);
    return d;
  }
  // Saturate budgets the clock's duration type cannot represent: the naive
  // duration_cast would overflow and wrap not_after into the past, turning
  // "practically unbounded" into "already expired".
  const std::chrono::duration<double> want(seconds);
  const auto max_representable =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::duration::max());
  if (want >= max_representable / 2) {
    d.state_->not_after = Clock::time_point::max();
    return d;
  }
  d.state_->not_after =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(want);
  return d;
}

Deadline Deadline::after_checks(std::uint64_t checks) {
  Deadline d;
  d.state_->has_check_limit = true;
  d.state_->check_limit = checks;
  return d;
}

bool Deadline::expired() const {
  State& s = *state_;
  if (s.cancelled.load(std::memory_order_relaxed)) return true;
  if (s.has_check_limit) {
    // fetch_add counts this poll; the token expires on poll number
    // check_limit + 1 and every poll after it.
    if (s.checks.fetch_add(1, std::memory_order_relaxed) >= s.check_limit) {
      s.cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  if (s.has_time_limit && Clock::now() >= s.not_after) {
    s.cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Deadline DeadlineLedger::acquire(std::uint64_t cap) const {
  if (unlimited()) {
    if (cap == 0) return Deadline{};  // inactive: callee's own config applies
    return Deadline::after_checks(cap);
  }
  const std::uint64_t armed = cap == 0 ? remaining_
                                       : std::min(cap, remaining_);
  return Deadline::after_checks(armed);
}

void DeadlineLedger::settle(const Deadline& deadline) {
  if (!deadline.has_check_limit()) return;
  charge(std::min(deadline.checks_used(), deadline.check_limit()));
}

}  // namespace meda::util
