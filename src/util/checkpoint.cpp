#include "util/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda::util {

DigestBuilder& DigestBuilder::mix(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(bits);
}

DigestBuilder& DigestBuilder::mix(const std::string& s) {
  mix(static_cast<std::uint64_t>(s.size()));
  for (const char c : s)
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  return *this;
}

void SlotCheckpoint::open(std::string path, std::uint64_t digest, bool resume,
                          std::size_t slot_count, int flush_every) {
  MEDA_REQUIRE(!path.empty(), "checkpoint path must be non-empty");
  MEDA_REQUIRE(flush_every > 0, "checkpoint flush_every must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  digest_ = digest;
  flush_every_ = flush_every;
  restored_count_ = 0;
  unflushed_ = 0;
  slots_.assign(slot_count, std::nullopt);
  if (!resume) return;

  std::ifstream in(path_);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line)) return;
  // Header: "meda-checkpoint v1 <digest-hex> <slot_count>". Any mismatch
  // (version, digest, grid size) means the file belongs to a different
  // configuration — start fresh rather than resume from it.
  {
    std::istringstream header(line);
    std::string magic, version, digest_hex;
    std::size_t count = 0;
    header >> magic >> version >> digest_hex >> count;
    if (magic != "meda-checkpoint" || version != "v1" || count != slot_count)
      return;
    std::uint64_t file_digest = 0;
    try {
      file_digest = std::stoull(digest_hex, nullptr, 16);
    } catch (...) {
      return;
    }
    if (file_digest != digest_) return;
  }
  while (std::getline(in, line)) {
    // A line without a terminating '\n' (eof hit mid-line) is a torn write
    // from a crashed non-atomic writer: drop it, the slot just recomputes.
    if (in.eof()) break;
    if (line.empty()) continue;
    std::size_t idx = 0;
    std::size_t consumed = 0;
    try {
      idx = std::stoull(line, &consumed);
    } catch (...) {
      continue;  // malformed line (e.g. torn write from a pre-v1 tool)
    }
    if (idx >= slot_count) continue;
    if (consumed >= line.size() || line[consumed] != ' ') continue;
    if (!slots_[idx].has_value()) ++restored_count_;
    slots_[idx] = line.substr(consumed + 1);
  }
}

const std::string* SlotCheckpoint::restored(std::size_t slot) const {
  if (path_.empty() || slot >= slots_.size()) return nullptr;
  const auto& entry = slots_[slot];
  return entry.has_value() ? &*entry : nullptr;
}

void SlotCheckpoint::record(std::size_t slot, const std::string& payload) {
  if (path_.empty()) return;
  MEDA_REQUIRE(slot < slots_.size(), "checkpoint slot out of range");
  MEDA_REQUIRE(payload.find('\n') == std::string::npos,
               "checkpoint payload must be single-line");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!slots_[slot].has_value()) ++unflushed_;
  slots_[slot] = payload;
  if (unflushed_ >= flush_every_) write_file_locked();
}

void SlotCheckpoint::flush() {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  write_file_locked();
}

void SlotCheckpoint::write_file_locked() {
  unflushed_ = 0;
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // unwritable directory: checkpointing degrades, the
                       // campaign itself still runs
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(digest_));
    out << "meda-checkpoint v1 " << digest_hex << ' ' << slots_.size()
        << '\n';
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].has_value()) out << i << ' ' << *slots_[i] << '\n';
  }
  // POSIX rename is atomic: readers (and a resumed run) see either the old
  // complete file or the new one.
  std::rename(tmp.c_str(), path_.c_str());
}

}  // namespace meda::util
