#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

/// @file rng.hpp
/// Deterministic, forkable random number generation.
///
/// Every stochastic component in the library (degradation sampling, fault
/// injection, actuation-outcome sampling, experiment trial seeding) draws from
/// an explicitly passed Rng so that all experiments are reproducible from a
/// single master seed.

namespace meda {

/// Seeded pseudo-random source with the distribution helpers used throughout
/// the library. Wraps std::mt19937_64.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Returns an independent child generator. The child seed mixes this
  /// generator's seed-stream with @p stream so distinct streams are decorrelated
  /// without consuming numbers from this generator's sequence in a way that
  /// depends on call order elsewhere.
  Rng fork(std::uint64_t stream);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli trial; p is clamped to [0, 1].
  bool bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);

  /// Standard normal variate scaled to N(mean, sd).
  double normal(double mean, double sd);

  /// Raw 64-bit draw (used for seeding sub-components).
  std::uint64_t next_u64() { return engine_(); }

  /// Underlying engine access for std:: distributions and std::shuffle.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Returns @p n distinct integers drawn uniformly from [0, population).
/// Requires n <= population. Result is in random order.
std::vector<int> sample_without_replacement(Rng& rng, int population, int n);

}  // namespace meda
