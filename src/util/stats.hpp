#pragma once

#include <span>
#include <vector>

/// @file stats.hpp
/// Statistics helpers used by the degradation studies (Fig. 3, Fig. 6) and the
/// experiment harnesses (Fig. 15/16): descriptive statistics, Pearson
/// correlation, and least-squares fits with adjusted R².

namespace meda::stats {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires at least 2 samples.
double sample_variance(std::span<const double> xs);

/// Unbiased sample standard deviation. Requires at least 2 samples.
double sample_stddev(std::span<const double> xs);

/// Population variance (n denominator). Requires a non-empty input.
double population_variance(std::span<const double> xs);

/// Population standard deviation. Requires a non-empty input.
double population_stddev(std::span<const double> xs);

/// Population covariance of two equal-length series.
double covariance(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient ρ = cov(x,y)/(σx·σy).
/// Returns 0 when either series is constant (σ = 0), which is the convention
/// used for never-actuated microelectrode pairs in the Fig. 3 study.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation for Boolean actuation vectors (Section III-C).
double pearson_bool(std::span<const unsigned char> xs,
                    std::span<const unsigned char> ys);

/// Result of a least-squares fit.
struct FitResult {
  double intercept = 0.0;   ///< a in y = a + b·x
  double slope = 0.0;       ///< b in y = a + b·x
  double r2 = 0.0;          ///< coefficient of determination
  double r2_adjusted = 0.0; ///< R² adjusted for 2 fitted parameters
};

/// Ordinary least squares of y = a + b·x. Requires at least 3 points and a
/// non-constant x.
FitResult linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Fits y = A·exp(k·x) by linear regression on ln(y). All y must be > 0.
/// Returned FitResult has intercept = ln(A) and slope = k; r2/r2_adjusted are
/// computed in the original (non-log) space against the fitted exponential.
FitResult exponential_fit(std::span<const double> xs,
                          std::span<const double> ys);

/// Incremental mean/SD accumulator (Welford) for streaming experiment results.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample SD; 0 when fewer than 2 samples.
  double stddev() const;
  /// Half-width of a ~95% confidence interval for the mean
  /// (t-distribution critical value for small samples, 1.96 asymptotically;
  /// 0 when fewer than 2 samples).
  double ci95_halfwidth() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace meda::stats
