// Quickstart: synthesize an adaptive droplet-routing strategy on a partially
// degraded MEDA biochip and execute it on the simulator.
//
// The chip has a heavily degraded vertical band in the middle. The
// degradation-unaware baseline routes straight through the band (its
// full-health model sees nothing wrong); the adaptive synthesizer reads the
// sensed 2-bit health matrix and routes around it.

#include <iostream>

#include "assay/helper.hpp"
#include "core/scheduler.hpp"
#include "core/strategy_render.hpp"
#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

/// Pre-ages a band of MCs by actuating them heavily.
void age_band(Biochip& chip, const Rect& band, std::uint64_t actuations) {
  for (int y = band.ya; y <= band.yb; ++y)
    for (int x = band.xa; x <= band.xb; ++x)
      chip.mc(x, y).actuate_n(actuations);
}

/// Executes a single routing job with the given strategy; returns cycles.
std::uint64_t execute(sim::SimulatedChip& chip, core::DropletId droplet,
                      const assay::RoutingJob& rj,
                      const core::Strategy& strategy,
                      std::uint64_t max_cycles) {
  std::uint64_t cycles = 0;
  while (cycles < max_cycles) {
    const Rect pos = chip.droplet_position(droplet);
    if (rj.goal.contains(pos)) return cycles;
    const auto action = strategy.action(pos);
    if (!action) break;  // drifted off the synthesized region
    chip.step({core::Command{droplet, *action, -1}});
    ++cycles;
  }
  return max_cycles;
}

}  // namespace

int main() {
  // 1. A 60×30 MEDA biochip with the paper's degradation parameters.
  sim::SimulatedChipConfig config;
  config.chip.width = 60;
  config.chip.height = 30;
  config.chip.health_bits = 2;
  sim::SimulatedChip chip(config, Rng(7));

  // 2. Wear out a vertical band between the droplet and its goal, leaving a
  //    healthy corridor along the chip's southern rows.
  age_band(chip.substrate(), Rect{28, 13, 31, 29}, 3000);

  // 3. A routing job: move a 4×4 droplet across the chip.
  assay::RoutingJob rj;
  rj.start = Rect::from_size(4, 12, 4, 4);
  rj.goal = Rect::from_size(50, 12, 4, 4);
  rj.hazard = assay::zone(rj.start, rj.goal, chip.bounds(), 3);

  // 4. Synthesize: adaptive (from the sensed health matrix H) vs the
  //    degradation-unaware baseline (full-health force model).
  core::Synthesizer synthesizer(chip.bounds());
  const core::SynthesisResult adaptive =
      synthesizer.synthesize(rj, chip.sense_health(), chip.health_bits());
  const core::SynthesisResult baseline = synthesizer.synthesize_with_force(
      rj, full_health_force(60, 30));

  Table table({"strategy", "states", "choices", "expected cycles"});
  table.add_row({"adaptive", fmt_int(static_cast<long long>(
                                 adaptive.stats.states)),
                 fmt_int(static_cast<long long>(adaptive.stats.choices)),
                 fmt_double(adaptive.expected_cycles, 1)});
  table.add_row({"baseline", fmt_int(static_cast<long long>(
                                 baseline.stats.states)),
                 fmt_int(static_cast<long long>(baseline.stats.choices)),
                 fmt_double(baseline.expected_cycles, 1)});
  table.print(std::cout);

  // The adaptive strategy as a vector field (droplet anchors; the worn
  // band shows up as the southbound detour; '*' marks the goal).
  std::cout << "\nAdaptive strategy field:\n"
            << core::render_strategy_field(adaptive.strategy, rj, 4, 4);

  // 5. Execute both strategies on the simulator (same chip state).
  const core::DropletId d1 = chip.dispense(Rect::from_size(0, 12, 4, 4));
  // Walk it to the start location first (the dispense port is at the edge).
  core::Strategy walk;  // trivial eastward walk
  for (int x = 0; x < rj.start.xa; ++x)
    walk.set(Rect::from_size(x, 12, 4, 4), Action::kE);
  assay::RoutingJob to_start = rj;
  to_start.goal = rj.start;
  execute(chip, d1, to_start, walk, 100);

  const std::uint64_t adaptive_cycles =
      execute(chip, d1, rj, adaptive.strategy, 2000);
  std::cout << "\nAdaptive execution reached the goal in " << adaptive_cycles
            << " cycles (expected ≈ " << fmt_double(adaptive.expected_cycles, 1)
            << ").\n";
  std::cout << "Baseline expected cycles (degradation-blind model): "
            << fmt_double(baseline.expected_cycles, 1)
            << " — it routes straight through the degraded band and stalls "
               "there in reality.\n";
  return 0;
}
