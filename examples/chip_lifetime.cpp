// Chip-reuse scenario (Section VII-B motivation): a CMOS MEDA biochip should
// survive a panel of diagnostic tests. Runs COVID-PCR repeatedly on the same
// chip with the adaptive and the baseline router and reports how many
// executions each sustains before the first failure.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "core/routability.hpp"
#include "sim/experiments.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

int executions_before_first_failure(const std::vector<sim::RunRecord>& runs) {
  int n = 0;
  for (const sim::RunRecord& r : runs) {
    if (!r.success) break;
    ++n;
  }
  return n;
}

}  // namespace

int main() {
  const assay::MoList assay_list = assay::covid_pcr();
  std::cout << "Repeatedly executing " << assay_list.name
            << " on one chip (degradation persists between runs)\n\n";

  Table table({"router", "runs attempted", "successes",
               "runs before 1st failure", "mean cycles (successful)"});

  for (const bool adaptive : {true, false}) {
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    // Accelerated degradation so the lifetime difference shows in 14 runs.
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.scheduler.adaptive = adaptive;
    config.scheduler.max_cycles = 1200;
    config.runs = 14;
    config.seed = 99;  // identical chip for both routers

    const std::vector<sim::RunRecord> runs =
        sim::run_repeated(assay_list, config);
    int successes = 0;
    double cycle_sum = 0.0;
    for (const sim::RunRecord& r : runs) {
      if (r.success) {
        ++successes;
        cycle_sum += static_cast<double>(r.cycles);
      }
    }
    table.add_row(
        {adaptive ? "adaptive (proposed)" : "baseline (shortest path)",
         std::to_string(runs.size()), std::to_string(successes),
         std::to_string(executions_before_first_failure(runs)),
         successes > 0 ? fmt_double(cycle_sum / successes, 1) : "-"});
  }

  table.print(std::cout);
  std::cout << "\nThe adaptive router steers around worn microelectrodes and\n"
               "sustains more executions of the panel on the same chip.\n";

  // End-of-life analytics: sample routability of comparable chips at three
  // points in their life (fresh / mid-life / end-of-life wear).
  std::cout << "\nRoutability vs chip age (sampled 4x4 routing jobs):\n";
  Table health_table({"chip age", "feasible jobs", "mean E[cycles]",
                      "stretch vs fresh"});
  for (const std::uint64_t wear : {0ull, 150ull, 400ull}) {
    sim::SimulatedChipConfig config;
    config.chip.width = assay::kChipWidth;
    config.chip.height = assay::kChipHeight;
    config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.pre_wear_max = wear;
    sim::SimulatedChip chip(config, Rng(99));
    Rng sampler(4);
    core::RoutabilityConfig rconfig;
    rconfig.jobs = 40;
    const core::RoutabilityReport report = core::assess_routability(
        chip.sense_health(), chip.health_bits(), rconfig, sampler);
    health_table.add_row(
        {wear == 0 ? "fresh" : "pre-wear <= " + std::to_string(wear),
         fmt_prob(report.feasible_fraction),
         fmt_double(report.mean_expected_cycles, 1),
         fmt_double(report.mean_stretch, 2)});
  }
  health_table.print(std::cout);
  std::cout << "\nRetire the chip when the feasible fraction drops or the\n"
               "stretch factor makes time-to-result unacceptable.\n";
  return 0;
}
