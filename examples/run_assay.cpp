// Command-line bioassay runner: executes any benchmark bioassay on a
// configurable simulated MEDA biochip and reports execution statistics.
//
// Usage:
//   run_assay [assay] [options]
//
//   assay                 master-mix | cep | serial-dilution | nuip |
//                         covid-rat | covid-pcr | chip-ip | multiplex |
//                         gene-expression        (default: serial-dilution)
//   --file PATH           load a custom bioassay in the assay text format
//                         (see src/assay/parser.hpp) instead of a benchmark
//   --baseline            degradation-unaware shortest-path router
//   --reactive N          baseline + retrial recovery after N stuck cycles
//   --runs N              repeated executions on the same chip (default 1)
//   --seed S              master RNG seed (default 1)
//   --prewear N           mid-life chip: up to N prior actuations per MC
//   --faults MODE FRAC    inject faults: uniform|clustered, fraction (0-1)
//   --degradation LO HI   per-MC constant c ~ U(LO, HI) (default 200 500)
//   --max-cycles N        per-execution abort bound (default 3000)
//   --trace PATH          write a Chrome trace_event JSON file (load in
//                         chrome://tracing or https://ui.perfetto.dev):
//                         nested scheduler/job/synthesis spans plus
//                         cycle-domain counter tracks
//   --metrics PATH        write a metrics-registry snapshot (.json for
//                         JSON, anything else for the text format)
//   --ascii-trace N       print an ASCII chip frame every N cycles
//   --report PATH         write a self-contained HTML execution report
//   --health-bits B       health-sensor resolution (default 2)
//   --sensor-noise P      noisy scan chain: per-bit flip probability P,
//                         plus 1% stuck DFFs and 2% frame drops
//   --robust              health filter + recovery ladder (watchdog,
//                         re-sense, quarantine, bounded retries, abort)

#include <cstring>
#include <iostream>
#include <string>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "assay/registry.hpp"
#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "sim/report.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

assay::MoList pick_assay(const std::string& name) {
  return assay::make_benchmark(name);
}

[[noreturn]] void usage() {
  std::cerr << "usage: run_assay [assay] [--file PATH] [--baseline] "
               "[--reactive N] [--runs N] [--seed S]\n                 "
               "[--prewear N] [--faults uniform|clustered FRAC]\n"
               "                 [--degradation LO HI] [--max-cycles N] "
               "[--report PATH] [--health-bits B]\n"
               "                 [--sensor-noise P] [--robust] "
               "[--trace PATH] [--metrics PATH] [--ascii-trace N]\n"
               "benchmarks:\n";
  for (const auto& info : assay::list_benchmarks())
    std::cerr << "  " << info.key << " — " << info.description << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string assay_name = "serial-dilution";
  std::string assay_file;
  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = assay::kChipWidth;
  chip_config.chip.height = assay::kChipHeight;
  core::SchedulerConfig sched;
  sched.max_cycles = 3000;
  std::uint64_t seed = 1;
  int runs = 1;
  int trace_every = 0;
  std::string report_path;
  std::string trace_path;
  std::string metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (++i >= argc) usage();
        return argv[i];
      };
      if (arg == "--file") {
        assay_file = next();
      } else if (arg == "--baseline") {
        sched.adaptive = false;
      } else if (arg == "--reactive") {
        sched.adaptive = false;
        sched.reactive_recovery_stuck_cycles = std::stoi(next());
      } else if (arg == "--runs") {
        runs = std::stoi(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--prewear") {
        chip_config.pre_wear_max = std::stoull(next());
      } else if (arg == "--faults") {
        const std::string mode = next();
        if (mode == "uniform") chip_config.faults.mode = FaultMode::kUniform;
        else if (mode == "clustered")
          chip_config.faults.mode = FaultMode::kClustered;
        else usage();
        chip_config.faults.faulty_fraction = std::stod(next());
        chip_config.faults.fail_at_lo = 15;
        chip_config.faults.fail_at_hi = 150;
      } else if (arg == "--degradation") {
        chip_config.chip.degradation.c_lo = std::stod(next());
        chip_config.chip.degradation.c_hi = std::stod(next());
      } else if (arg == "--max-cycles") {
        sched.max_cycles = std::stoull(next());
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--ascii-trace") {
        trace_every = std::stoi(next());
        chip_config.record_droplet_trace = true;
      } else if (arg == "--report") {
        report_path = next();
        chip_config.record_droplet_trace = true;
      } else if (arg == "--health-bits") {
        chip_config.chip.health_bits = std::stoi(next());
      } else if (arg == "--sensor-noise") {
        chip_config.sensor.bit_flip_p = std::stod(next());
        chip_config.sensor.stuck_fraction = 0.01;
        chip_config.sensor.frame_drop_p = 0.02;
      } else if (arg == "--robust") {
        sched.filter.enabled = true;
        sched.recovery.enabled = true;
      } else if (!arg.empty() && arg[0] == '-') {
        usage();
      } else {
        assay_name = arg;
      }
    }

    const assay::MoList assay_list = assay_file.empty()
                                         ? pick_assay(assay_name)
                                         : assay::load_assay_file(assay_file);
    if (!trace_path.empty()) obs::ctx().tracer().enable();
    if (!metrics_path.empty()) obs::ctx().metrics().enable();
    // Flushes on every exit from this scope — including the exception path
    // below — so an aborted run still leaves valid --trace/--metrics files.
    obs::FlushGuard obs_flush(trace_path, metrics_path);
    sim::SimulatedChip chip(chip_config, Rng(seed));
    core::StrategyLibrary library;
    core::Scheduler scheduler(sched, &library);

    const char* router = sched.adaptive ? "adaptive (proposed)"
                         : sched.reactive_recovery_stuck_cycles > 0
                             ? "baseline + reactive recovery"
                             : "baseline (shortest path)";
    std::cout << assay_list.name << " on a " << chip_config.chip.width << "x"
              << chip_config.chip.height << " MEDA biochip — " << router
              << "\n\n";

    Table table({"run", "result", "cycles", "synth calls", "lib hits",
                 "re-syntheses", "synth ms"});
    int successes = 0;
    for (int run = 0; run < runs; ++run) {
      chip.clear_droplets();
      const core::ExecutionStats stats = scheduler.run(chip, assay_list);
      successes += stats.success;
      if (!report_path.empty() && run == 0) {
        sim::write_html_report(report_path, assay_list, stats, chip);
        std::cout << "report written to " << report_path << "\n\n";
      }
      table.add_row(
          {std::to_string(run + 1),
           stats.success ? "success" : "FAILED (" + stats.failure_reason + ")",
           std::to_string(stats.cycles), std::to_string(stats.synthesis_calls),
           std::to_string(stats.library_hits),
           std::to_string(stats.resyntheses),
           fmt_double(stats.synthesis_seconds * 1e3, 2)});

      if (run == 0 && !stats.events.empty()) {
        std::cout << "event log (run 1):\n"
                  << obs::format_events(stats.events) << "\n";
      }
      if (trace_every > 0 && run == 0) {
        const auto& frames = chip.droplet_trace();
        for (std::size_t f = 0; f < frames.size();
             f += static_cast<std::size_t>(trace_every)) {
          std::cout << "cycle " << f << ":\n"
                    << render_frame(chip, frames[f]) << '\n';
        }
      }
    }
    table.print(std::cout);
    std::cout << "\n" << successes << "/" << runs << " executions succeeded; "
              << "total MC actuations "
              << chip.substrate().total_actuations() << "\n";
    if (!trace_path.empty()) {
      obs::ctx().tracer().write_json(trace_path);
      std::cout << "trace written to " << trace_path << " ("
                << obs::ctx().tracer().event_count()
                << " events; load in chrome://tracing or Perfetto)\n";
    }
    if (!metrics_path.empty()) {
      obs::ctx().metrics().write_snapshot(metrics_path);
      std::cout << "metrics snapshot written to " << metrics_path << "\n";
    }
    obs_flush.disarm();  // the normal-path writes above already happened
    return successes == runs ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
