// Exports the Table V routing-job MDPs in PRISM's explicit-state format so
// the models built by this library can be cross-validated against the
// actual PRISM / PRISM-games model checker the paper used:
//
//   prism -importtrans tablev_10x10_d3.tra -importstates tablev_10x10_d3.sta
//         -importlabels tablev_10x10_d3.lab -mdp tablev_10x10_d3.props
//   (one command line)
//
// Files are written to the current directory.

#include <iostream>

#include "core/prism_export.hpp"
#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"

using namespace meda;

int main() {
  ActionRules rules;
  rules.enable_morphing = false;  // Table V's positional state space
  for (const int area : {10, 20, 30}) {
    for (const int droplet : {3, 4, 5, 6}) {
      const Rect chip{0, 0, area - 1, area - 1};
      assay::RoutingJob rj;
      rj.start = Rect::from_size(0, 0, droplet, droplet);
      rj.goal = Rect::from_size(area - droplet, area - droplet, droplet,
                                droplet);
      rj.hazard = chip;
      // Worst-case health for model size: degraded but no zero codes.
      const DoubleMatrix force = force_from_health(
          IntMatrix(area, area, 2), 2, HealthEstimator::kScaled);
      const core::RoutingMdp mdp =
          core::build_routing_mdp(rj, force, chip, rules);
      const std::string base = "tablev_" + std::to_string(area) + "x" +
                               std::to_string(area) + "_d" +
                               std::to_string(droplet);
      core::export_prism_model(mdp, base);
      const core::ModelStats stats = mdp.stats();
      std::cout << base << ".{sta,tra,lab,props}: " << stats.states
                << " states, " << stats.transitions << " transitions, "
                << stats.choices << " choices\n";
    }
  }
  std::cout << "\nVerify with, e.g.:\n"
               "  prism -importtrans tablev_10x10_d3.tra \\\n"
               "        -importstates tablev_10x10_d3.sta \\\n"
               "        -importlabels tablev_10x10_d3.lab -mdp \\\n"
               "        tablev_10x10_d3.props\n"
               "and compare the reported Pmax/Rmin with "
               "bench/tablev_synthesis_runtime.\n";
  return 0;
}
