// Runs the complete Serial Dilution bioassay (the paper's longest-transport
// benchmark) end to end through the hybrid scheduler, printing a per-MO
// timeline and the chip's degradation footprint afterwards.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "assay/concentration.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

/// ASCII heatmap of the chip's health matrix (one char per 2×2 MC block).
void print_health_map(const Biochip& chip) {
  const IntMatrix h = chip.health_matrix();
  const char glyphs[] = {'#', '+', '.', ' '};  // 0..3 (2-bit health)
  for (int y = chip.height() - 1; y >= 0; y -= 2) {
    for (int x = 0; x < chip.width(); x += 2) {
      int worst = 3;
      for (int dy = 0; dy < 2 && y - dy >= 0; ++dy)
        for (int dx = 0; dx < 2 && x + dx < chip.width(); ++dx)
          worst = std::min(worst, h(x + dx, y - dy));
      std::cout << glyphs[worst];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  const assay::MoList assay_list = assay::serial_dilution();
  std::cout << "Bioassay: " << assay_list.name << " ("
            << assay_list.ops.size() << " microfluidic operations)\n\n";

  Table mos({"MO", "type", "#pre", "loc"});
  for (const assay::Mo& mo : assay_list.ops) {
    mos.add_row({"M" + std::to_string(mo.id), std::string(to_string(mo.type)),
                 std::to_string(mo.pre.size()),
                 "(" + fmt_double(mo.locs[0].x, 1) + ", " +
                     fmt_double(mo.locs[0].y, 1) + ")"});
  }
  mos.print(std::cout);

  // Chemical intent: the sample (concentration 1.0 at M0) is halved at
  // every dilution stage.
  std::cout << "\nConcentration ladder (sample = 1.0, buffers = 0.0):\n";
  const auto conc = assay::compute_concentrations(assay_list, {{0, 1.0}});
  Table ladder({"stage", "output concentration"});
  int stage = 1;
  for (const assay::Mo& mo : assay_list.ops) {
    if (mo.type != assay::MoType::kDilute) continue;
    ladder.add_row({"dilution " + std::to_string(stage++),
                    fmt_double(conc[static_cast<std::size_t>(mo.id)][0], 4)});
  }
  ladder.print(std::cout);

  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = assay::kChipWidth;
  chip_config.chip.height = assay::kChipHeight;
  sim::SimulatedChip chip(chip_config, Rng(2024));

  core::SchedulerConfig sched;
  sched.adaptive = true;
  sched.max_cycles = 4000;
  core::Scheduler scheduler(sched);

  const core::ExecutionStats stats = scheduler.run(chip, assay_list);

  std::cout << "\nPer-MO schedule (cycles relative to run start):\n";
  Table gantt({"MO", "type", "activated", "completed", "span"});
  for (const core::MoTiming& t : stats.mo_timings) {
    if (!t.done) continue;
    gantt.add_row({"M" + std::to_string(t.mo),
                   std::string(to_string(assay_list.op(t.mo).type)),
                   std::to_string(t.activated), std::to_string(t.completed),
                   std::to_string(t.completed - t.activated)});
  }
  gantt.print(std::cout);

  std::cout << "\nExecution " << (stats.success ? "SUCCEEDED" : "FAILED")
            << " in " << stats.cycles << " cycles\n"
            << "  synthesis calls: " << stats.synthesis_calls
            << " (library hits " << stats.library_hits << ", re-syntheses "
            << stats.resyntheses << ")\n"
            << "  synthesis wall time: "
            << fmt_double(stats.synthesis_seconds, 3) << " s\n"
            << "  total MC actuations: " << chip.substrate().total_actuations()
            << "\n\nChip health after the run ('#' = dead, ' ' = healthy):\n";
  print_health_map(chip.substrate());
  return stats.success ? 0 : 1;
}
