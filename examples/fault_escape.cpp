// Clustered-fault scenario (Section VII-C): 2×2 clusters of microelectrodes
// fail suddenly mid-execution. Shows the adaptive router detecting the health
// change through the 2-bit sensor and re-synthesizing around the cluster,
// while the baseline stalls on it.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  Table table({"router", "fault mode", "result", "cycles", "re-syntheses"});

  for (const bool adaptive : {true, false}) {
    for (const FaultMode mode : {FaultMode::kUniform, FaultMode::kClustered}) {
      sim::SimulatedChipConfig config;
      config.chip.width = assay::kChipWidth;
      config.chip.height = assay::kChipHeight;
      // A mid-life (pre-worn) chip whose injected faults trip within the
      // first dozens of actuations — the clusters become roadblocks during
      // the run.
      config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
      config.pre_wear_max = 150;
      config.faults.mode = mode;
      config.faults.faulty_fraction = 0.10;
      config.faults.fail_at_lo = 5;
      config.faults.fail_at_hi = 60;
      sim::SimulatedChip chip(config, Rng(4242));  // same chip per router

      core::SchedulerConfig sched;
      sched.adaptive = adaptive;
      sched.max_cycles = 3000;
      core::Scheduler scheduler(sched);

      const core::ExecutionStats stats =
          scheduler.run(chip, assay::cep());
      table.add_row({adaptive ? "adaptive" : "baseline",
                     mode == FaultMode::kUniform ? "uniform" : "clustered",
                     stats.success ? "success" : "FAILED",
                     std::to_string(stats.cycles),
                     std::to_string(stats.resyntheses)});
    }
  }

  std::cout << "CEP bioassay with sudden mid-run microelectrode failures\n\n";
  table.print(std::cout);
  std::cout << "\nClustered faults act as roadblocks; the adaptive router\n"
               "re-synthesizes when the sensed health matrix changes and\n"
               "escapes them.\n";
  return 0;
}
