// Cooperative pair routing (extension beyond the paper): two droplets must
// exchange the ends of a narrow corridor. Routed independently their
// shortest paths collide head-on and deadlock; the pair planner searches
// the joint state space and choreographs a passing maneuver that respects
// the MEDA separation rule at every cycle.

#include <iostream>

#include "core/pair_planner.hpp"
#include "model/outcomes.hpp"
#include "sim/simulated_chip.hpp"

using namespace meda;

int main() {
  // A 24×8 corridor; two 3×3 droplets swap ends.
  const Rect bounds{0, 0, 23, 7};
  sim::SimulatedChipConfig config;
  config.chip.width = 24;
  config.chip.height = 8;
  config.record_droplet_trace = true;
  sim::SimulatedChip chip(config, Rng(11));

  assay::RoutingJob job_a;
  job_a.start = Rect::from_size(0, 2, 3, 3);
  job_a.goal = Rect::from_size(21, 2, 3, 3);
  job_a.hazard = bounds;
  assay::RoutingJob job_b;
  job_b.start = job_a.goal;
  job_b.goal = job_a.start;
  job_b.hazard = bounds;

  core::PairPlannerConfig planner_config;
  planner_config.rules.enable_morphing = false;
  const core::PairPlan plan = core::plan_pair(
      job_a, job_b, full_health_force(24, 8), bounds, planner_config);
  if (!plan.feasible) {
    std::cerr << "no joint plan found\n";
    return 1;
  }
  std::cout << "Joint plan: " << plan.steps.size() << " cycles ("
            << plan.states_expanded << " pair states expanded)\n\n";

  const core::DropletId da = chip.dispense(job_a.start);
  const core::DropletId db = chip.dispense(job_b.start);
  for (const core::PairPlanStep& step : plan.steps) {
    std::vector<core::Command> commands;
    if (step.a) commands.push_back(core::Command{da, *step.a, -1});
    if (step.b) commands.push_back(core::Command{db, *step.b, -1});
    chip.step(commands);
  }

  // Show the maneuver as ASCII frames (every third cycle).
  const auto& trace = chip.droplet_trace();
  for (std::size_t f = 0; f < trace.size(); f += 3) {
    std::cout << "cycle " << f + 1 << ":\n"
              << render_frame(chip, trace[f]) << '\n';
  }

  const bool ok = job_a.goal.contains(chip.droplet_position(da)) &&
                  job_b.goal.contains(chip.droplet_position(db));
  std::cout << (ok ? "Both droplets reached their goals — the pair plan\n"
                     "passes where independent shortest paths deadlock.\n"
                   : "Swap FAILED\n");
  return ok ? 0 : 1;
}
